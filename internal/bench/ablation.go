package bench

import (
	"fmt"

	"tetrabft/internal/scenario"
	"tetrabft/internal/sweep"
	"tetrabft/internal/types"
)

// AblationRow is one timeout-factor measurement.
type AblationRow struct {
	Factor int
	// Good-case scenario under high-variance delays (uniform [5, Δ]):
	GoodDecided  bool
	GoodDecideAt int64
	GoodMaxView  types.View // views consumed (0 = no spurious view change)
	// Silent-leader scenario (recovery cost scales with Factor×Δ):
	SilentDecided  bool
	SilentDecideAt int64
}

// AblationTimeout justifies the paper's 9Δ timeout (Section 3.2) by
// sweeping the timeout factor:
//
//   - far below the 8Δ analysis bound (e.g. 2Δ), views expire before they
//     can complete under realistic delay variance and the protocol
//     livelocks — safety holds, liveness does not;
//   - at the paper's 9Δ, the good case never times out spuriously;
//   - far above (e.g. 18Δ), the good case is unaffected but recovery from
//     a crashed leader doubles, since the timeout is the detection latency.
//
// Both columns are one-axis grids on the sweep engine (the factor is the
// axis), so the measurements fan out over the worker pool; the observer
// hook reads the per-node decision times the aggregated stats do not carry.
func AblationTimeout(factors []int) ([]AblationRow, error) {
	const delta = int64(10)
	axis := sweep.Axis{Field: "timeout_factor", Ints: make([]int64, len(factors))}
	for i, f := range factors {
		axis.Ints[i] = int64(f)
	}

	// Scenario A: honest leader, delays uniform in [5, Δ] (messages stay
	// within the bound, but a view needs ≈ 7·E[delay] ≈ 50 ticks).
	good := scenario.Scenario{
		Protocol: scenario.TetraBFT,
		Nodes:    4,
		Seed:     1,
		Delta:    delta,
		Network: scenario.NetworkSpec{
			Delay: &scenario.DelaySpec{Model: scenario.DelayUniform, Min: 5, Max: delta},
		},
		Stop: scenario.StopSpec{Horizon: 4000},
	}
	// Scenario B: silent view-0 leader, unit delays; recovery latency is
	// dominated by the timeout itself.
	silent := scenario.Scenario{
		Protocol: scenario.TetraBFT,
		Nodes:    4,
		Seed:     1,
		Delta:    delta,
		Faults:   []scenario.FaultSpec{{Type: scenario.FaultSilent, Node: 0}},
		Stop:     scenario.StopSpec{Horizon: 4000},
	}

	type obs struct {
		decided bool
		at      int64
		maxView types.View
		err     error
	}
	observeInto := func(outs []obs, node types.NodeID) sweep.Observer {
		return func(cell, _ int, res *scenario.Result, err error) {
			o := &outs[cell]
			o.err = err
			if res == nil {
				return
			}
			if d, ok := res.Decision(node, 0); ok {
				o.decided, o.at = true, d.At
			}
			o.maxView = types.View(res.MaxView)
		}
	}
	goodObs := make([]obs, len(factors))
	if _, err := sweep.RunObserved(sweep.Sweep{Base: good, Axes: []sweep.Axis{axis}},
		observeInto(goodObs, 0)); err != nil {
		return nil, err
	}
	silentObs := make([]obs, len(factors))
	if _, err := sweep.RunObserved(sweep.Sweep{Base: silent, Axes: []sweep.Axis{axis}},
		observeInto(silentObs, 1)); err != nil {
		return nil, err
	}

	rows := make([]AblationRow, 0, len(factors))
	for i, factor := range factors {
		if err := goodObs[i].err; err != nil {
			return nil, fmt.Errorf("bench: ablation factor %d: %w", factor, err)
		}
		if err := silentObs[i].err; err != nil {
			return nil, fmt.Errorf("bench: ablation factor %d: %w", factor, err)
		}
		rows = append(rows, AblationRow{
			Factor:         factor,
			GoodDecided:    goodObs[i].decided,
			GoodDecideAt:   goodObs[i].at,
			GoodMaxView:    goodObs[i].maxView,
			SilentDecided:  silentObs[i].decided,
			SilentDecideAt: silentObs[i].at,
		})
	}
	return rows, nil
}
