package bench

import (
	"fmt"

	"tetrabft/internal/scenario"
	"tetrabft/internal/types"
)

// AblationRow is one timeout-factor measurement.
type AblationRow struct {
	Factor int
	// Good-case scenario under high-variance delays (uniform [5, Δ]):
	GoodDecided  bool
	GoodDecideAt int64
	GoodMaxView  types.View // views consumed (0 = no spurious view change)
	// Silent-leader scenario (recovery cost scales with Factor×Δ):
	SilentDecided  bool
	SilentDecideAt int64
}

// AblationTimeout justifies the paper's 9Δ timeout (Section 3.2) by
// sweeping the timeout factor:
//
//   - far below the 8Δ analysis bound (e.g. 2Δ), views expire before they
//     can complete under realistic delay variance and the protocol
//     livelocks — safety holds, liveness does not;
//   - at the paper's 9Δ, the good case never times out spuriously;
//   - far above (e.g. 18Δ), the good case is unaffected but recovery from
//     a crashed leader doubles, since the timeout is the detection latency.
func AblationTimeout(factors []int) ([]AblationRow, error) {
	const delta = int64(10)
	rows := make([]AblationRow, 0, len(factors))
	for _, factor := range factors {
		row := AblationRow{Factor: factor}

		// Scenario A: honest leader, delays uniform in [5, Δ] (messages
		// stay within the bound, but a view needs ≈ 7·E[delay] ≈ 50 ticks).
		good, err := scenario.Run(scenario.Scenario{
			Protocol:      scenario.TetraBFT,
			Nodes:         4,
			Seed:          1,
			Delta:         delta,
			TimeoutFactor: factor,
			Network: scenario.NetworkSpec{
				Delay: &scenario.DelaySpec{Model: scenario.DelayUniform, Min: 5, Max: delta},
			},
			Stop: scenario.StopSpec{Horizon: 4000},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ablation factor %d: %w", factor, err)
		}
		if d, ok := good.Decision(0, 0); ok {
			row.GoodDecided = true
			row.GoodDecideAt = d.At
		}
		row.GoodMaxView = types.View(good.MaxView)

		// Scenario B: silent view-0 leader, unit delays; recovery latency
		// is dominated by the timeout itself.
		silent, err := scenario.Run(scenario.Scenario{
			Protocol:      scenario.TetraBFT,
			Nodes:         4,
			Seed:          1,
			Delta:         delta,
			TimeoutFactor: factor,
			Faults:        []scenario.FaultSpec{{Type: scenario.FaultSilent, Node: 0}},
			Stop:          scenario.StopSpec{Horizon: 4000},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ablation factor %d: %w", factor, err)
		}
		if d, ok := silent.Decision(1, 0); ok {
			row.SilentDecided = true
			row.SilentDecideAt = d.At
		}
		rows = append(rows, row)
	}
	return rows, nil
}
