package bench

import (
	"fmt"
	"io"

	"tetrabft/internal/scenario"
	"tetrabft/internal/types"
)

// StageRow is one protocol stage's latency distribution, folded from the
// end-to-end trace by the scenario layer's shared stage fold.
type StageRow struct {
	Stage string
	Count int
	P50   int64 // ticks
	P99   int64
}

// StagesResult decomposes good-case and crashed-leader latency by protocol
// stage. The good case pins where the paper's ~3δ pipelined finalization
// spends its delays; the crashed-leader case adds the view-change dwell
// the 9Δ timeout analysis (E8) bounds.
type StagesResult struct {
	Good  []StageRow
	Crash []StageRow
}

// stageScenario is the fixed workload behind both decompositions: 20
// pipelined slots at unit delay, with an optionally-crashed first leader.
func stageScenario(silent bool) scenario.Scenario {
	sc := scenario.Scenario{
		Protocol: scenario.TetraBFTMulti,
		Nodes:    4,
		Seed:     1,
		Delta:    10,
		Workload: scenario.WorkloadSpec{MaxSlot: 20},
		Stop:     scenario.StopSpec{Horizon: 20000},
		Collect:  scenario.CollectSpec{Stages: true},
	}
	if silent {
		sc.Faults = append(sc.Faults, scenario.FaultSpec{Type: scenario.FaultSilent, Node: types.NodeID(0)})
	}
	return sc
}

// StageDecomposition runs the good-case and crashed-leader multishot
// workloads and returns their per-stage latency breakdowns.
func StageDecomposition() (StagesResult, error) {
	var out StagesResult
	for _, c := range []struct {
		silent bool
		dst    *[]StageRow
	}{{false, &out.Good}, {true, &out.Crash}} {
		res, err := scenario.RunCached(stageScenario(c.silent))
		if err != nil {
			return StagesResult{}, fmt.Errorf("bench: stage decomposition (silent=%v): %w", c.silent, err)
		}
		for _, d := range res.Stages {
			*c.dst = append(*c.dst, StageRow{Stage: d.Stage, Count: d.Count, P50: d.P50, P99: d.P99})
		}
	}
	return out, nil
}

// WriteStages renders the stage-decomposition experiment.
func WriteStages(w io.Writer, res StagesResult) {
	for _, c := range []struct {
		title string
		rows  []StageRow
	}{{"good case (unit delay)", res.Good}, {"crashed first leader", res.Crash}} {
		fmt.Fprintf(w, "%s:\n", c.title)
		fmt.Fprintf(w, "  %-24s %6s %8s %8s\n", "Stage", "Count", "p50", "p99")
		for _, row := range c.rows {
			fmt.Fprintf(w, "  %-24s %6d %8d %8d\n", row.Stage, row.Count, row.P50, row.P99)
		}
	}
}
