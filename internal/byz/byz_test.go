package byz

import (
	"testing"

	"tetrabft/internal/sim"
	"tetrabft/internal/types"
)

// collector records everything delivered to it.
type collector struct {
	id   types.NodeID
	msgs []types.Message
}

func (c *collector) ID() types.NodeID { return c.id }
func (c *collector) Start(types.Env)  {}
func (c *collector) Deliver(_ types.Env, _ types.NodeID, m types.Message) {
	c.msgs = append(c.msgs, m)
}
func (c *collector) Tick(types.Env, types.TimerID) {}

func TestSilentSendsNothing(t *testing.T) {
	r := sim.New(sim.Config{Seed: 1})
	sink := &collector{id: 1}
	r.Add(Silent{NodeID: 0})
	r.Add(sink)
	if err := r.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if len(sink.msgs) != 0 {
		t.Errorf("silent node sent %d messages", len(sink.msgs))
	}
}

func TestEquivocatorSplitsValues(t *testing.T) {
	r := sim.New(sim.Config{Seed: 1})
	sinks := []*collector{{id: 1}, {id: 2}}
	r.Add(Equivocator{NodeID: 0, Peers: []types.NodeID{1, 2}, ValA: "A", ValB: "B"})
	for _, s := range sinks {
		r.Add(s)
	}
	if err := r.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	get := func(c *collector) types.Value {
		if len(c.msgs) != 1 {
			t.Fatalf("node %d got %d messages, want 1", c.id, len(c.msgs))
		}
		p, ok := c.msgs[0].(types.Proposal)
		if !ok {
			t.Fatalf("node %d got %T", c.id, c.msgs[0])
		}
		return p.Val
	}
	a, b := get(sinks[0]), get(sinks[1])
	if a == b {
		t.Errorf("equivocator sent the same value (%q) to both halves", a)
	}
}

func TestRandomRespectsBudgetAndDeterminism(t *testing.T) {
	run := func() []types.Message {
		r := sim.New(sim.Config{Seed: 9})
		sink := &collector{id: 1}
		r.Add(&Random{NodeID: 0, Seed: 5, Budget: 10, Burst: 3})
		r.Add(sink)
		if err := r.Run(0, nil); err != nil {
			t.Fatal(err)
		}
		return sink.msgs
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("random adversary sent nothing")
	}
	// Budget: 10 total broadcasts, each delivered once to the sink.
	if len(first) > 10 {
		t.Errorf("budget exceeded: %d messages", len(first))
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("non-deterministic: %d vs %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic at message %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestScriptedReactions(t *testing.T) {
	r := sim.New(sim.Config{Seed: 1})
	sink := &collector{id: 1}
	script := &Scripted{
		NodeID:  0,
		OnStart: []types.Message{types.ViewChange{View: 1}},
		React: map[types.Kind][]types.Message{
			types.KindProposal: {types.VoteMsg{Phase: 1, View: 0, Val: "r"}},
		},
	}
	r.Add(script)
	r.Add(sink)
	r.Add(&oneShotProposer{id: 2})
	if err := r.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	var vcs, votes int
	for _, m := range sink.msgs {
		switch m.(type) {
		case types.ViewChange:
			vcs++
		case types.VoteMsg:
			votes++
		}
	}
	if vcs != 1 {
		t.Errorf("OnStart broadcast seen %d times, want 1", vcs)
	}
	// Two proposals arrive but MaxReactions defaults to 1.
	if votes != 1 {
		t.Errorf("reaction fired %d times, want 1", votes)
	}
}

type oneShotProposer struct {
	id types.NodeID
}

func (p *oneShotProposer) ID() types.NodeID { return p.id }
func (p *oneShotProposer) Start(env types.Env) {
	env.Broadcast(types.Proposal{View: 0, Val: "x"})
	env.Broadcast(types.Proposal{View: 0, Val: "y"})
}
func (p *oneShotProposer) Deliver(types.Env, types.NodeID, types.Message) {}
func (p *oneShotProposer) Tick(types.Env, types.TimerID)                  {}
