// Package byz provides reusable Byzantine node behaviors for adversarial
// tests and experiments. Each behavior implements types.Machine and can be
// dropped into the simulator in place of an honest node.
package byz

import (
	"math/rand"

	"tetrabft/internal/types"
)

// Silent is a crashed node: it never sends anything. A silent leader is the
// canonical trigger for the view-change path measured in Table 1.
type Silent struct {
	NodeID types.NodeID
}

var _ types.Machine = Silent{}

// ID implements types.Machine.
func (s Silent) ID() types.NodeID { return s.NodeID }

// Start implements types.Machine.
func (Silent) Start(types.Env) {}

// Deliver implements types.Machine.
func (Silent) Deliver(types.Env, types.NodeID, types.Message) {}

// Tick implements types.Machine.
func (Silent) Tick(types.Env, types.TimerID) {}

// Equivocator is a view-0 leader that proposes different values to the two
// halves of the cluster and then goes silent. Honest nodes split their
// vote-1s, no quorum forms, and the protocol must recover via view change.
type Equivocator struct {
	NodeID types.NodeID
	Peers  []types.NodeID
	ValA   types.Value
	ValB   types.Value
}

var _ types.Machine = Equivocator{}

// ID implements types.Machine.
func (e Equivocator) ID() types.NodeID { return e.NodeID }

// Start implements types.Machine.
func (e Equivocator) Start(env types.Env) {
	for i, p := range e.Peers {
		val := e.ValA
		if i%2 == 1 {
			val = e.ValB
		}
		env.Send(p, types.Proposal{View: 0, Val: val})
	}
}

// Deliver implements types.Machine.
func (Equivocator) Deliver(types.Env, types.NodeID, types.Message) {}

// Tick implements types.Machine.
func (Equivocator) Tick(types.Env, types.TimerID) {}

// Random is a fuzzing adversary: on every delivery it may blurt out a burst
// of randomly shaped protocol messages (proposals, votes of any phase,
// forged suggest/proof histories, view changes). Deterministic per seed.
type Random struct {
	NodeID  types.NodeID
	Seed    int64
	Values  []types.Value
	MaxView types.View
	Burst   int // messages per delivery (default 2)
	Budget  int // lifetime message cap (default 300)

	rng  *rand.Rand
	sent int
}

var _ types.Machine = (*Random)(nil)

// ID implements types.Machine.
func (r *Random) ID() types.NodeID { return r.NodeID }

// Start implements types.Machine.
func (r *Random) Start(env types.Env) {
	r.rng = rand.New(rand.NewSource(r.Seed))
	if r.Burst == 0 {
		r.Burst = 2
	}
	if r.Budget == 0 {
		r.Budget = 300
	}
	if len(r.Values) == 0 {
		r.Values = []types.Value{"byz-a", "byz-b"}
	}
	if r.MaxView == 0 {
		r.MaxView = 4
	}
	r.spew(env)
}

// Deliver implements types.Machine.
func (r *Random) Deliver(env types.Env, _ types.NodeID, _ types.Message) {
	r.spew(env)
}

// Tick implements types.Machine.
func (r *Random) Tick(types.Env, types.TimerID) {}

func (r *Random) spew(env types.Env) {
	for i := 0; i < r.Burst && r.sent < r.Budget; i++ {
		env.Broadcast(r.randomMessage())
		r.sent++
	}
}

func (r *Random) randomMessage() types.Message {
	view := types.View(r.rng.Int63n(int64(r.MaxView) + 1))
	val := r.Values[r.rng.Intn(len(r.Values))]
	switch r.rng.Intn(5) {
	case 0:
		return types.Proposal{View: view, Val: val}
	case 1:
		return types.VoteMsg{Phase: uint8(r.rng.Intn(4) + 1), View: view, Val: val}
	case 2:
		return types.SuggestMsg{View: view, Vote2: r.randomRef(), PrevVote2: r.randomRef(), Vote3: r.randomRef()}
	case 3:
		return types.ProofMsg{View: view, Vote1: r.randomRef(), PrevVote1: r.randomRef(), Vote4: r.randomRef()}
	default:
		return types.ViewChange{View: view + 1}
	}
}

func (r *Random) randomRef() types.VoteRef {
	if r.rng.Intn(3) == 0 {
		return types.VoteRef{}
	}
	return types.Vote(types.View(r.rng.Int63n(int64(r.MaxView)+1)), r.Values[r.rng.Intn(len(r.Values))])
}

// Scripted replays a fixed schedule of (trigger, emissions). It exists for
// precisely choreographed attack scenarios in tests.
type Scripted struct {
	NodeID types.NodeID
	// OnStart is broadcast immediately.
	OnStart []types.Message
	// React maps a received message kind to messages broadcast in reply
	// (each reaction fires at most MaxReactions times; default 1).
	React        map[types.Kind][]types.Message
	MaxReactions int

	fired map[types.Kind]int
}

var _ types.Machine = (*Scripted)(nil)

// ID implements types.Machine.
func (s *Scripted) ID() types.NodeID { return s.NodeID }

// Start implements types.Machine.
func (s *Scripted) Start(env types.Env) {
	s.fired = make(map[types.Kind]int)
	if s.MaxReactions == 0 {
		s.MaxReactions = 1
	}
	for _, m := range s.OnStart {
		env.Broadcast(m)
	}
}

// Deliver implements types.Machine.
func (s *Scripted) Deliver(env types.Env, _ types.NodeID, msg types.Message) {
	reactions, ok := s.React[msg.Kind()]
	if !ok || s.fired[msg.Kind()] >= s.MaxReactions {
		return
	}
	s.fired[msg.Kind()]++
	for _, m := range reactions {
		env.Broadcast(m)
	}
}

// Tick implements types.Machine.
func (*Scripted) Tick(types.Env, types.TimerID) {}
