package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	blk := Block{Slot: 7, Parent: Block{Slot: 6}.ID(), Payload: []byte("txns")}
	msgs := []Message{
		Proposal{View: 0, Val: "a"},
		Proposal{View: 12, Val: ""},
		VoteMsg{Phase: 1, View: 3, Val: "x"},
		VoteMsg{Phase: 4, View: 0, Val: "longer value with spaces"},
		SuggestMsg{View: 5, Vote2: Vote(3, "a"), PrevVote2: Vote(1, "b"), Vote3: Vote(2, "a")},
		SuggestMsg{View: 5},
		ProofMsg{View: 9, Vote1: Vote(8, "v"), PrevVote1: VoteRef{}, Vote4: Vote(0, "w")},
		ViewChange{View: 4},
		MSPropose{View: 1, Block: blk},
		MSPropose{View: 3, Block: Block{Slot: 8, Parent: blk.ID(), Payload: []byte("hdr"),
			Txs: [][]byte{[]byte("tx-1"), []byte("tx-22")}}},
		MSFinal{Block: blk},
		MSFinal{Block: Block{Slot: 4, Parent: blk.ID(), Payload: []byte("p"),
			Txs: [][]byte{[]byte("t")}}},
		MSVote{Slot: 9, View: 2, Block: blk.ID()},
		MSViewChange{Slot: 3, View: 1},
		MSSuggest{Slot: 2, View: 1, Vote2: Vote(0, "p")},
		MSProof{Slot: 2, View: 1, Vote1: Vote(0, "p"), Vote4: Vote(0, "p")},
		GenericVote{Proto: ProtoPBFT, Phase: 2, View: 1, Slot: 0, Val: "q"},
		Evidence{Proto: ProtoPBFT, Phase: 1, View: 2, Val: "r",
			Evidence: []VoteRef{Vote(0, "a"), Vote(1, "b"), {}}},
		Evidence{Proto: ProtoITHS, Phase: 9, View: 0, Val: ""},
	}
	for _, m := range msgs {
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch: sent %#v got %#v", m, got)
		}
		if EncodedSize(m) != len(data) {
			t.Errorf("EncodedSize(%v) = %d, want %d", m, EncodedSize(m), len(data))
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                  // kind 0 unknown
		{99},                 // unknown kind
		{byte(KindProposal)}, // truncated
		{byte(KindVote), 1},  // truncated
		append(Encode(Proposal{View: 1, Val: "x"}), 0xFF), // trailing
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: Decode(%v) succeeded, want error", i, data)
		}
	}
}

// TestBatchKindSelection asserts that the dynamic Kind dispatch keeps
// unbatched messages on the historical kinds (and therefore byte-identical
// to the pre-batching wire format) while batched ones travel as the
// *-batch kinds.
func TestBatchKindSelection(t *testing.T) {
	blk := Block{Slot: 5, Parent: Block{Slot: 4}.ID(), Payload: []byte("h")}
	batched := blk
	batched.Txs = [][]byte{[]byte("tx")}
	cases := []struct {
		msg  Message
		want Kind
	}{
		{MSPropose{View: 1, Block: blk}, KindMSPropose},
		{MSPropose{View: 1, Block: batched}, KindMSProposeBatch},
		{MSFinal{Block: blk}, KindMSFinal},
		{MSFinal{Block: batched}, KindMSFinalBatch},
	}
	for _, c := range cases {
		if got := c.msg.Kind(); got != c.want {
			t.Errorf("%#v Kind() = %s, want %s", c.msg, got, c.want)
		}
		if data := Encode(c.msg); Kind(data[0]) != c.want {
			t.Errorf("%#v encodes kind byte %d, want %s", c.msg, data[0], c.want)
		}
	}
	// The unbatched encoding must be a strict prefix of the batched one
	// (kind byte aside): batching only appends, it never reshapes.
	plain := Encode(MSPropose{View: 1, Block: blk})
	withTxs := Encode(MSPropose{View: 1, Block: batched})
	if !bytes.Equal(plain[1:], withTxs[1:len(plain)]) {
		t.Errorf("batched encoding reshapes the unbatched fields:\n  plain %x\n  batch %x", plain, withTxs)
	}
}

// TestDecodeRejectsEmptyBatch pins the canonical-encoding rule: a *-batch
// kind carrying zero transactions is malformed, because the same block
// would otherwise have two valid encodings.
func TestDecodeRejectsEmptyBatch(t *testing.T) {
	blk := Block{Slot: 5, Payload: []byte("h")}
	for _, c := range []struct {
		plain Kind
		batch Kind
		msg   Message
	}{
		{KindMSPropose, KindMSProposeBatch, MSPropose{View: 1, Block: blk}},
		{KindMSFinal, KindMSFinalBatch, MSFinal{Block: blk}},
	} {
		data := Encode(c.msg)
		if Kind(data[0]) != c.plain {
			t.Fatalf("setup: %v encoded as %s", c.msg, Kind(data[0]))
		}
		data[0] = byte(c.batch)
		forged := append(data, 0) // uvarint tx count 0
		if _, err := Decode(forged); err == nil {
			t.Errorf("%s with an empty batch decoded successfully, want error", c.batch)
		}
		// A bogus huge count must be rejected before allocating.
		forged[len(forged)-1] = 0xFF
		forged = append(forged, 0xFF, 0xFF, 0x7F)
		if _, err := Decode(forged); err == nil {
			t.Errorf("%s with a bogus tx count decoded successfully, want error", c.batch)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	msgs := []Message{
		SuggestMsg{View: 5, Vote2: Vote(3, "abc"), PrevVote2: Vote(1, "b"), Vote3: Vote(2, "a")},
		MSPropose{View: 1, Block: Block{Slot: 2, Payload: []byte("p")}},
		MSPropose{View: 1, Block: Block{Slot: 2, Payload: []byte("p"),
			Txs: [][]byte{[]byte("tx1"), []byte("tx2")}}},
		Evidence{Proto: ProtoPBFT, Phase: 1, View: 2, Val: "r", Evidence: []VoteRef{Vote(0, "a")}},
	}
	for _, m := range msgs {
		full := Encode(m)
		for cut := 1; cut < len(full); cut++ {
			if got, err := Decode(full[:cut]); err == nil && reflect.DeepEqual(got, m) {
				t.Errorf("truncated %v to %d bytes still decoded to original", m, cut)
			}
		}
	}
}

// quickRef builds an arbitrary VoteRef from fuzz inputs.
func quickRef(valid bool, view int16, val string) VoteRef {
	if !valid {
		return VoteRef{}
	}
	return VoteRef{Valid: true, View: View(abs16(view)), Val: Value(val)}
}

func abs16(v int16) int64 {
	if v < 0 {
		return -int64(v)
	}
	return int64(v)
}

func TestQuickProposalRoundTrip(t *testing.T) {
	f := func(view int32, val string) bool {
		m := Proposal{View: View(view), Val: Value(val)}
		got, err := Decode(Encode(m))
		return err == nil && got == Message(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSuggestRoundTrip(t *testing.T) {
	f := func(view int16, v2ok bool, v2v int16, v2s string, pvok bool, pvv int16, pvs string, v3ok bool, v3v int16, v3s string) bool {
		m := SuggestMsg{
			View:      View(abs16(view)),
			Vote2:     quickRef(v2ok, v2v, v2s),
			PrevVote2: quickRef(pvok, pvv, pvs),
			Vote3:     quickRef(v3ok, v3v, v3s),
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(got, Message(m))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvidenceRoundTrip(t *testing.T) {
	f := func(view int16, val string, n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]VoteRef, 0, n%16)
		for i := 0; i < int(n%16); i++ {
			refs = append(refs, quickRef(rng.Intn(2) == 0, int16(rng.Intn(100)), string(rune('a'+rng.Intn(26)))))
		}
		m := Evidence{Proto: ProtoPBFT, Phase: 1, View: View(abs16(view)), Val: Value(val), Evidence: refs}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		ge, ok := got.(Evidence)
		if !ok {
			return false
		}
		if len(refs) == 0 {
			return len(ge.Evidence) == 0 && ge.Val == m.Val && ge.View == m.View
		}
		return reflect.DeepEqual(ge, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
