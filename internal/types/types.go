// Package types defines the identifiers, values, votes, blocks and wire
// messages shared by every protocol in this repository, together with the
// deterministic state-machine interfaces that protocol cores implement.
//
// Protocol cores are pure: they consume delivered messages and timer fires
// through the Machine interface and emit effects through the Env interface.
// All I/O (the discrete-event simulator, the TCP transport, the WAL) lives
// behind Env, which is what makes message-delay accounting, deterministic
// replay and model checking possible.
package types

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// NodeID identifies a consensus node. Nodes are numbered 0..n-1.
type NodeID int

// View is a view (round) number. Views start at 0; NoView marks "none".
type View int64

// NoView is the sentinel for "no view" (e.g. a node that never voted).
const NoView View = -1

// Slot is a position in the multi-shot (blockchain) log. Slots start at 1,
// matching the paper's Algorithm 3. Slot 0 denotes the single-shot instance.
type Slot int64

// Time is virtual time in ticks. The simulator uses one tick per message
// delay in latency experiments, so decision times read directly as the
// "message delays" currency used throughout the paper.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration int64

// TimerID names a timer set by a protocol core. Cores encode whatever they
// need (typically a view or slot number) and ignore stale fires themselves.
type TimerID int64

// Value is an opaque consensus value. The empty string is a legal value;
// "no value" is expressed by VoteRef.Valid or by context, never by "".
type Value string

// VoteRef records a (view, value) pair from a node's persistent vote state,
// as reported inside suggest and proof messages. The zero VoteRef means
// "this node never sent such a vote" (Valid == false).
type VoteRef struct {
	Valid bool
	View  View
	Val   Value
}

// Vote returns a valid VoteRef for the given view and value.
func Vote(v View, val Value) VoteRef {
	return VoteRef{Valid: true, View: v, Val: val}
}

// String renders the reference for traces and test failures.
func (r VoteRef) String() string {
	if !r.Valid {
		return "⊥"
	}
	return fmt.Sprintf("(v=%d,%q)", r.View, string(r.Val))
}

// BlockID is the hash-pointer identity of a block.
type BlockID [32]byte

// ZeroBlockID is the parent of the genesis block.
var ZeroBlockID BlockID

// String renders a short hex prefix of the block ID.
func (id BlockID) String() string {
	return hex.EncodeToString(id[:4])
}

// Value converts a block ID into an opaque consensus value so the multi-shot
// protocol can reuse the single-shot vote machinery.
func (id BlockID) Value() Value { return Value(id[:]) }

// BlockIDFromValue recovers a block ID from a consensus value produced by
// BlockID.Value. It reports false if the value has the wrong shape.
func BlockIDFromValue(v Value) (BlockID, bool) {
	var id BlockID
	if len(v) != len(id) {
		return id, false
	}
	copy(id[:], v)
	return id, true
}

// Block is a blockchain block: a payload linked to its parent by hash
// pointer, pinned to the slot it was proposed for. A batched block
// additionally carries an ordered slice of client transactions; a cluster
// either runs batched (every honest proposal sets Txs) or unbatched, so the
// two shapes never compete for the same slot.
type Block struct {
	Slot    Slot
	Parent  BlockID
	Payload []byte
	// Txs is the ordered client transaction batch (nil when unbatched).
	// Batched blocks travel as the *-batch wire kinds; a nil-Txs block
	// encodes and hashes exactly as it did before batching existed.
	Txs [][]byte
}

// NumTxs returns the batch size.
func (b Block) NumTxs() int { return len(b.Txs) }

// ID computes the block's hash-pointer identity. An empty batch contributes
// nothing, so unbatched blocks keep their historical identities.
func (b Block) ID() BlockID {
	h := sha256.New()
	var buf [16]byte
	putInt64(buf[:8], int64(b.Slot))
	h.Write(buf[:8])
	h.Write(b.Parent[:])
	h.Write(b.Payload)
	for _, tx := range b.Txs {
		putInt64(buf[8:], int64(len(tx)))
		h.Write(buf[8:])
		h.Write(tx)
	}
	var id BlockID
	h.Sum(id[:0])
	return id
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

// Env is the effect interface protocol cores use to act on the world.
// Implementations: the discrete-event simulator and the TCP runtime.
type Env interface {
	// Now returns the current virtual (or wall) time.
	Now() Time
	// Send transmits msg to a single peer.
	Send(to NodeID, msg Message)
	// Broadcast transmits msg to every node, including the sender itself
	// (self-delivery is immediate; nodes count their own votes, matching
	// the paper's quorum counting).
	Broadcast(msg Message)
	// SetTimer schedules a Tick(id) after d. Timers are one-shot and are
	// never cancelled; cores ignore stale fires. Re-arming the same id for
	// the same instant coalesces into one fire.
	SetTimer(id TimerID, d Duration)
	// Decide reports a decision for a slot (slot 0 for single-shot).
	Decide(slot Slot, val Value)
}

// Machine is a deterministic protocol state machine. The runtime guarantees
// the three methods are never invoked concurrently.
type Machine interface {
	// ID returns the node's identity.
	ID() NodeID
	// Start runs once at time zero, before any delivery.
	Start(env Env)
	// Deliver hands the machine a message from a peer.
	Deliver(env Env, from NodeID, msg Message)
	// Tick fires a timer previously set through Env.SetTimer.
	Tick(env Env, id TimerID)
}
