package types

import (
	"bytes"
	"testing"
)

// sizeCases covers every message kind, including the varint boundary views
// (63/64 is where zig-zag crosses a byte) and empty/long values.
func sizeCases() []Message {
	long := Value(bytes.Repeat([]byte("x"), 300))
	var parent BlockID
	for i := range parent {
		parent[i] = byte(i)
	}
	refs := []VoteRef{
		{},
		Vote(0, ""),
		Vote(63, "a"),
		Vote(64, long),
		{Valid: true, View: NoView, Val: "neg"},
	}
	return []Message{
		Proposal{View: 0, Val: ""},
		Proposal{View: 63, Val: "v"},
		Proposal{View: 64, Val: long},
		Proposal{View: NoView, Val: "neg"},
		VoteMsg{Phase: 1, View: 0, Val: "x"},
		VoteMsg{Phase: 4, View: 1 << 20, Val: long},
		SuggestMsg{View: 5, Vote2: refs[1], PrevVote2: refs[0], Vote3: refs[3]},
		SuggestMsg{View: 1 << 40, Vote2: refs[4], PrevVote2: refs[2], Vote3: refs[0]},
		ProofMsg{View: 7, Vote1: refs[3], PrevVote1: refs[1], Vote4: refs[2]},
		ViewChange{View: 0},
		ViewChange{View: 1 << 30},
		MSPropose{View: 2, Block: Block{Slot: 9, Parent: parent, Payload: nil}},
		MSPropose{View: 64, Block: Block{Slot: 1 << 35, Parent: parent, Payload: []byte(long)}},
		MSVote{Slot: 1, View: 0, Block: parent},
		MSVote{Slot: 1 << 50, View: 63, Block: BlockID{}},
		MSViewChange{Slot: 4, View: 2},
		MSSuggest{Slot: 6, View: 3, Vote2: refs[2], PrevVote2: refs[4], Vote3: refs[1]},
		MSProof{Slot: 8, View: 4, Vote1: refs[0], PrevVote1: refs[3], Vote4: refs[4]},
		MSFinal{Block: Block{Slot: 11, Parent: parent, Payload: []byte("payload")}},
		MSPropose{View: 3, Block: Block{Slot: 10, Parent: parent, Payload: []byte("hdr"),
			Txs: [][]byte{[]byte("a"), bytes.Repeat([]byte("t"), 200), {}}}},
		MSFinal{Block: Block{Slot: 12, Parent: parent,
			Txs: [][]byte{bytes.Repeat([]byte("u"), 127)}}},
		GenericVote{Proto: ProtoPBFT, Phase: 3, View: 12, Slot: 0, Val: "gv"},
		GenericVote{Proto: ProtoRBC, Phase: 1, View: 0, Slot: 1 << 45, Val: long},
		Evidence{Proto: ProtoPBFT, Phase: 7, View: 2, Val: "ev", Evidence: nil},
		Evidence{Proto: ProtoITHS, Phase: 2, View: 64, Val: long, Evidence: refs},
	}
}

// TestEncodedSizeMatchesEncode is the differential test backing the
// analytic EncodedSize: it must agree with len(Encode(m)) for every kind.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	covered := make(map[Kind]bool)
	for _, m := range sizeCases() {
		covered[m.Kind()] = true
		if got, want := EncodedSize(m), len(Encode(m)); got != want {
			t.Errorf("%s %+v: EncodedSize = %d, len(Encode) = %d", m.Kind(), m, got, want)
		}
	}
	for k := KindProposal; k <= KindMSFinalBatch; k++ {
		if !covered[k] {
			t.Errorf("kind %s not covered by the differential size test", k)
		}
	}
}

// TestAppendEncodeMatchesEncode asserts AppendEncode extends the given
// buffer with exactly Encode's bytes.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	prefix := []byte("prefix")
	for _, m := range sizeCases() {
		want := Encode(m)
		got := AppendEncode(append([]byte(nil), prefix...), m)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("%s: AppendEncode clobbered the prefix", m.Kind())
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%s: AppendEncode appended %x, Encode produced %x", m.Kind(), got[len(prefix):], want)
		}
	}
}

// FuzzEncodedSize fuzzes the field space of the ref-carrying messages,
// where the analytic size has the most branches.
func FuzzEncodedSize(f *testing.F) {
	f.Add(int64(0), int64(0), "", true, false, "a", uint8(1))
	f.Add(int64(-1), int64(1<<40), "value", false, true, "", uint8(4))
	f.Add(int64(63), int64(64), "boundary", true, true, "x", uint8(2))
	f.Fuzz(func(t *testing.T, view, slot int64, val string, valid1, valid2 bool, refVal string, phase uint8) {
		r1 := VoteRef{Valid: valid1, View: View(view), Val: Value(refVal)}
		r2 := VoteRef{Valid: valid2, View: View(slot), Val: Value(val)}
		msgs := []Message{
			Proposal{View: View(view), Val: Value(val)},
			VoteMsg{Phase: phase, View: View(view), Val: Value(val)},
			SuggestMsg{View: View(view), Vote2: r1, PrevVote2: r2, Vote3: r1},
			ProofMsg{View: View(view), Vote1: r2, PrevVote1: r1, Vote4: r2},
			MSSuggest{Slot: Slot(slot), View: View(view), Vote2: r2, PrevVote2: r1, Vote3: r2},
			MSProof{Slot: Slot(slot), View: View(view), Vote1: r1, PrevVote1: r2, Vote4: r1},
			GenericVote{Proto: ProtoLi, Phase: phase, View: View(view), Slot: Slot(slot), Val: Value(val)},
			Evidence{Proto: ProtoPBFT, Phase: phase, View: View(view), Val: Value(val), Evidence: []VoteRef{r1, r2}},
		}
		for _, m := range msgs {
			if got, want := EncodedSize(m), len(Encode(m)); got != want {
				t.Errorf("%s %+v: EncodedSize = %d, len(Encode) = %d", m.Kind(), m, got, want)
			}
		}
	})
}

// TestEncodedSizeZeroAllocs pins the analytic size computation at zero
// allocations — the property the simulator hot path depends on.
func TestEncodedSizeZeroAllocs(t *testing.T) {
	msgs := []Message{
		Proposal{View: 3, Val: "val-1"},
		VoteMsg{Phase: 2, View: 3, Val: "val-1"},
		SuggestMsg{View: 4, Vote2: Vote(3, "v"), Vote3: Vote(2, "w")},
		Evidence{Proto: ProtoPBFT, Phase: 5, View: 1, Val: "e", Evidence: []VoteRef{Vote(0, "q")}},
	}
	for _, m := range msgs {
		m := m
		if allocs := testing.AllocsPerRun(100, func() { _ = EncodedSize(m) }); allocs != 0 {
			t.Errorf("%s: EncodedSize allocates %.1f times per call, want 0", m.Kind(), allocs)
		}
	}
}

func BenchmarkEncodedSize(b *testing.B) {
	m := Message(VoteMsg{Phase: 2, View: 7, Val: "val-123"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodedSize(m)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	m := Message(VoteMsg{Phase: 2, View: 7, Val: "val-123"})
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
}
