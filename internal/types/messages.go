package types

import "fmt"

// Kind discriminates wire messages.
type Kind uint8

// Message kinds. Kinds 1-5 are single-shot TetraBFT (Section 3.1 of the
// paper), 6-10 are multi-shot TetraBFT (Section 6), and the rest serve the
// baseline protocols reproduced for Table 1.
const (
	KindProposal Kind = iota + 1
	KindVote
	KindSuggest
	KindProof
	KindViewChange

	KindMSPropose
	KindMSVote
	KindMSViewChange
	KindMSSuggest
	KindMSProof
	KindMSFinal

	KindGenericVote
	KindEvidence

	// Batched multi-shot variants: the same MSPropose/MSFinal shapes with a
	// transaction batch appended. Separate kinds (rather than a count field
	// on the base kinds) keep every unbatched message byte-identical to the
	// pre-batching wire format.
	KindMSProposeBatch
	KindMSFinalBatch
)

// String names the kind for traces.
func (k Kind) String() string {
	switch k {
	case KindProposal:
		return "proposal"
	case KindVote:
		return "vote"
	case KindSuggest:
		return "suggest"
	case KindProof:
		return "proof"
	case KindViewChange:
		return "view-change"
	case KindMSPropose:
		return "ms-propose"
	case KindMSVote:
		return "ms-vote"
	case KindMSViewChange:
		return "ms-view-change"
	case KindMSSuggest:
		return "ms-suggest"
	case KindMSProof:
		return "ms-proof"
	case KindMSFinal:
		return "ms-final"
	case KindGenericVote:
		return "generic-vote"
	case KindEvidence:
		return "evidence"
	case KindMSProposeBatch:
		return "ms-propose-batch"
	case KindMSFinalBatch:
		return "ms-final-batch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is any wire message. Implementations are value types defined in
// this package so that encoding (and therefore byte accounting) lives in one
// place for every protocol in the repository.
type Message interface {
	Kind() Kind
}

// Proposal is the single-shot leader proposal ⟨proposal, v, val⟩.
type Proposal struct {
	View View
	Val  Value
}

// Kind implements Message.
func (Proposal) Kind() Kind { return KindProposal }

// VoteMsg is ⟨vote-i, v, val⟩ for i = Phase ∈ 1..4.
type VoteMsg struct {
	Phase uint8
	View  View
	Val   Value
}

// Kind implements Message.
func (VoteMsg) Kind() Kind { return KindVote }

// SuggestMsg carries a node's vote-2 history to the new leader:
// ⟨suggest, vote-2, prev-vote-2, vote-3⟩ (Section 3.1).
type SuggestMsg struct {
	View      View // the view this suggest is for
	Vote2     VoteRef
	PrevVote2 VoteRef
	Vote3     VoteRef
}

// Kind implements Message.
func (SuggestMsg) Kind() Kind { return KindSuggest }

// ProofMsg mirrors SuggestMsg with vote-1/vote-4 history, broadcast to all:
// ⟨proof, vote-1, prev-vote-1, vote-4⟩.
type ProofMsg struct {
	View      View
	Vote1     VoteRef
	PrevVote1 VoteRef
	Vote4     VoteRef
}

// Kind implements Message.
func (ProofMsg) Kind() Kind { return KindProof }

// ViewChange is ⟨view-change, v⟩: a request to move to view View.
type ViewChange struct {
	View View
}

// Kind implements Message.
func (ViewChange) Kind() Kind { return KindViewChange }

// MSPropose is the multi-shot leader proposal of a block for (Slot, View).
type MSPropose struct {
	View  View
	Block Block
}

// Kind implements Message: a proposal carrying a transaction batch travels
// as the batch kind, keeping batchless proposals byte-identical on the wire.
func (m MSPropose) Kind() Kind {
	if len(m.Block.Txs) > 0 {
		return KindMSProposeBatch
	}
	return KindMSPropose
}

// MSVote is the multi-shot ⟨vote, slot, view, value⟩. A vote for slot s
// doubles as vote-1 for s, vote-2 for s−1, vote-3 for s−2 and vote-4 for
// s−3 along the block's ancestor chain (Section 6.1).
type MSVote struct {
	Slot  Slot
	View  View
	Block BlockID
}

// Kind implements Message.
func (MSVote) Kind() Kind { return KindMSVote }

// MSViewChange is ⟨view-change, slot, view⟩: Slot is the lowest aborted slot.
type MSViewChange struct {
	Slot Slot
	View View
}

// Kind implements Message.
func (MSViewChange) Kind() Kind { return KindMSViewChange }

// MSSuggest is the per-slot suggest sent after a multi-shot view change.
type MSSuggest struct {
	Slot      Slot
	View      View
	Vote2     VoteRef
	PrevVote2 VoteRef
	Vote3     VoteRef
}

// Kind implements Message.
func (MSSuggest) Kind() Kind { return KindMSSuggest }

// MSProof is the per-slot proof broadcast after a multi-shot view change.
type MSProof struct {
	Slot      Slot
	View      View
	Vote1     VoteRef
	PrevVote1 VoteRef
	Vote4     VoteRef
}

// Kind implements Message.
func (MSProof) Kind() Kind { return KindMSProof }

// MSFinal is a finality claim used for straggler catch-up: a node that has
// finalized Block at its slot re-asserts it when peers still call view
// changes for that slot. f+1 matching claims contain at least one honest
// claimer, so adopting the claimed block is sound in the unauthenticated
// model (the same f+1-confirmation principle as Rule 2/4 blocking sets).
type MSFinal struct {
	Block Block
}

// Kind implements Message; batched claims travel as the batch kind (see
// MSPropose.Kind).
func (m MSFinal) Kind() Kind {
	if len(m.Block.Txs) > 0 {
		return KindMSFinalBatch
	}
	return KindMSFinal
}

// Proto labels which baseline protocol a GenericVote or Evidence message
// belongs to, so one encoding serves every baseline.
type Proto uint8

// Baseline protocol labels.
const (
	ProtoITHS Proto = iota + 1
	ProtoITHSBlog
	ProtoPBFT
	ProtoRBC
	ProtoLi
)

// GenericVote is the shared phase-message shape used by the baseline
// protocols (IT-HS echo/key/lock, PBFT pre-prepare/prepare/commit, Bracha
// RBC init/echo/ready, Li et al.). Phase semantics are per protocol.
type GenericVote struct {
	Proto Proto
	Phase uint8
	View  View
	Slot  Slot
	Val   Value
}

// Kind implements Message.
func (GenericVote) Kind() Kind { return KindGenericVote }

// Evidence is a baseline message that carries O(n) vote evidence, used by
// the PBFT view change (this is where PBFT's worst-case O(n³) total
// communication comes from: n nodes broadcasting O(n)-sized messages).
type Evidence struct {
	Proto    Proto
	Phase    uint8
	View     View
	Val      Value
	Evidence []VoteRef
}

// Kind implements Message.
func (Evidence) Kind() Kind { return KindEvidence }
