package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadMessage reports a malformed or truncated wire message.
var ErrBadMessage = errors.New("types: malformed message")

// Encode serializes a message into the repository's compact wire format:
// one kind byte followed by varint-encoded fields. Every protocol (TetraBFT
// and all baselines) shares this format so that the "communicated bits"
// measurements of Table 1 are apples-to-apples.
func Encode(m Message) []byte {
	return AppendEncode(nil, m)
}

// AppendEncode serializes a message into the wire format of Encode,
// appending to buf and returning the extended slice. Callers that reuse a
// buffer across messages avoid the per-message allocation of Encode.
func AppendEncode(buf []byte, m Message) []byte {
	w := writer{buf: buf}
	w.byte(byte(m.Kind()))
	switch v := m.(type) {
	case Proposal:
		w.view(v.View)
		w.value(v.Val)
	case VoteMsg:
		w.byte(v.Phase)
		w.view(v.View)
		w.value(v.Val)
	case SuggestMsg:
		w.view(v.View)
		w.ref(v.Vote2)
		w.ref(v.PrevVote2)
		w.ref(v.Vote3)
	case ProofMsg:
		w.view(v.View)
		w.ref(v.Vote1)
		w.ref(v.PrevVote1)
		w.ref(v.Vote4)
	case ViewChange:
		w.view(v.View)
	case MSPropose:
		w.view(v.View)
		w.block(v.Block)
	case MSVote:
		w.int64(int64(v.Slot))
		w.view(v.View)
		w.bytes(v.Block[:])
	case MSViewChange:
		w.int64(int64(v.Slot))
		w.view(v.View)
	case MSSuggest:
		w.int64(int64(v.Slot))
		w.view(v.View)
		w.ref(v.Vote2)
		w.ref(v.PrevVote2)
		w.ref(v.Vote3)
	case MSProof:
		w.int64(int64(v.Slot))
		w.view(v.View)
		w.ref(v.Vote1)
		w.ref(v.PrevVote1)
		w.ref(v.Vote4)
	case MSFinal:
		w.block(v.Block)
	case GenericVote:
		w.byte(byte(v.Proto))
		w.byte(v.Phase)
		w.view(v.View)
		w.int64(int64(v.Slot))
		w.value(v.Val)
	case Evidence:
		w.byte(byte(v.Proto))
		w.byte(v.Phase)
		w.view(v.View)
		w.value(v.Val)
		w.uvarint(uint64(len(v.Evidence)))
		for _, r := range v.Evidence {
			w.ref(r)
		}
	default:
		// Unknown concrete types indicate a programming error inside the
		// repository, not runtime input; fail loudly during development.
		panic(fmt.Sprintf("types: cannot encode %T", m))
	}
	return w.buf
}

// EncodedSize returns the wire size of a message in bytes, computed
// analytically from field widths. It allocates nothing and agrees with
// len(Encode(m)) for every message kind (asserted by a differential test),
// which makes byte accounting on the simulator hot path allocation-free.
func EncodedSize(m Message) int {
	switch v := m.(type) {
	case Proposal:
		return 1 + varintSize(int64(v.View)) + valueSize(v.Val)
	case VoteMsg:
		return 2 + varintSize(int64(v.View)) + valueSize(v.Val)
	case SuggestMsg:
		return 1 + varintSize(int64(v.View)) + refSize(v.Vote2) + refSize(v.PrevVote2) + refSize(v.Vote3)
	case ProofMsg:
		return 1 + varintSize(int64(v.View)) + refSize(v.Vote1) + refSize(v.PrevVote1) + refSize(v.Vote4)
	case ViewChange:
		return 1 + varintSize(int64(v.View))
	case MSPropose:
		return 1 + varintSize(int64(v.View)) + blockSize(v.Block)
	case MSVote:
		return 1 + varintSize(int64(v.Slot)) + varintSize(int64(v.View)) + len(v.Block)
	case MSViewChange:
		return 1 + varintSize(int64(v.Slot)) + varintSize(int64(v.View))
	case MSSuggest:
		return 1 + varintSize(int64(v.Slot)) + varintSize(int64(v.View)) +
			refSize(v.Vote2) + refSize(v.PrevVote2) + refSize(v.Vote3)
	case MSProof:
		return 1 + varintSize(int64(v.Slot)) + varintSize(int64(v.View)) +
			refSize(v.Vote1) + refSize(v.PrevVote1) + refSize(v.Vote4)
	case MSFinal:
		return 1 + blockSize(v.Block)
	case GenericVote:
		return 3 + varintSize(int64(v.View)) + varintSize(int64(v.Slot)) + valueSize(v.Val)
	case Evidence:
		n := 3 + varintSize(int64(v.View)) + valueSize(v.Val) + uvarintSize(uint64(len(v.Evidence)))
		for _, r := range v.Evidence {
			n += refSize(r)
		}
		return n
	default:
		panic(fmt.Sprintf("types: cannot size %T", m))
	}
}

// uvarintSize is the number of bytes binary.AppendUvarint emits for v.
func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintSize is the number of bytes binary.AppendVarint emits for v
// (zig-zag followed by uvarint).
func varintSize(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintSize(uv)
}

func valueSize(v Value) int { return uvarintSize(uint64(len(v))) + len(v) }

// blockSize mirrors writer.block analytically (everything after the kind
// byte and any view field).
func blockSize(b Block) int {
	n := varintSize(int64(b.Slot)) + len(b.Parent) + bytesSize(b.Payload)
	if len(b.Txs) > 0 {
		n += uvarintSize(uint64(len(b.Txs)))
		for _, tx := range b.Txs {
			n += bytesSize(tx)
		}
	}
	return n
}

func bytesSize(b []byte) int { return uvarintSize(uint64(len(b))) + len(b) }

func refSize(r VoteRef) int {
	if !r.Valid {
		return 1
	}
	return 1 + varintSize(int64(r.View)) + valueSize(r.Val)
}

// Decode parses a message previously produced by Encode.
func Decode(data []byte) (Message, error) {
	r := reader{buf: data}
	kind := Kind(r.byte())
	var m Message
	switch kind {
	case KindProposal:
		m = Proposal{View: r.view(), Val: r.value()}
	case KindVote:
		m = VoteMsg{Phase: r.byte(), View: r.view(), Val: r.value()}
	case KindSuggest:
		m = SuggestMsg{View: r.view(), Vote2: r.ref(), PrevVote2: r.ref(), Vote3: r.ref()}
	case KindProof:
		m = ProofMsg{View: r.view(), Vote1: r.ref(), PrevVote1: r.ref(), Vote4: r.ref()}
	case KindViewChange:
		m = ViewChange{View: r.view()}
	case KindMSPropose:
		v := MSPropose{View: r.view()}
		v.Block = r.block(false)
		m = v
	case KindMSProposeBatch:
		v := MSPropose{View: r.view()}
		v.Block = r.block(true)
		if len(v.Block.Txs) == 0 { // batch kind must carry a batch, or the
			return nil, ErrBadMessage // same block gets two encodings
		}
		m = v
	case KindMSVote:
		v := MSVote{Slot: Slot(r.int64()), View: r.view()}
		r.fixed(v.Block[:])
		m = v
	case KindMSViewChange:
		m = MSViewChange{Slot: Slot(r.int64()), View: r.view()}
	case KindMSSuggest:
		m = MSSuggest{Slot: Slot(r.int64()), View: r.view(), Vote2: r.ref(), PrevVote2: r.ref(), Vote3: r.ref()}
	case KindMSProof:
		m = MSProof{Slot: Slot(r.int64()), View: r.view(), Vote1: r.ref(), PrevVote1: r.ref(), Vote4: r.ref()}
	case KindMSFinal:
		m = MSFinal{Block: r.block(false)}
	case KindMSFinalBatch:
		v := MSFinal{Block: r.block(true)}
		if len(v.Block.Txs) == 0 {
			return nil, ErrBadMessage
		}
		m = v
	case KindGenericVote:
		m = GenericVote{Proto: Proto(r.byte()), Phase: r.byte(), View: r.view(), Slot: Slot(r.int64()), Val: r.value()}
	case KindEvidence:
		v := Evidence{Proto: Proto(r.byte()), Phase: r.byte(), View: r.view(), Val: r.value()}
		n := r.uvarint()
		if n > uint64(len(r.buf)) { // each ref costs ≥1 byte; reject bogus counts
			return nil, ErrBadMessage
		}
		if n > 0 {
			v.Evidence = make([]VoteRef, 0, n)
			for i := uint64(0); i < n; i++ {
				v.Evidence = append(v.Evidence, r.ref())
			}
		}
		m = v
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf))
	}
	return m, nil
}

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) bytes(b []byte)   { w.buf = append(w.buf, b...) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) int64(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) view(v View)      { w.int64(int64(v)) }

func (w *writer) value(v Value) {
	w.uvarint(uint64(len(v)))
	w.buf = append(w.buf, v...)
}

// block writes slot, parent and payload; a non-empty batch appends its
// uvarint count and length-prefixed transactions (the *-batch kind byte,
// written by the caller, announces their presence).
func (w *writer) block(b Block) {
	w.int64(int64(b.Slot))
	w.bytes(b.Parent[:])
	w.value(Value(b.Payload))
	if len(b.Txs) > 0 {
		w.uvarint(uint64(len(b.Txs)))
		for _, tx := range b.Txs {
			w.uvarint(uint64(len(tx)))
			w.buf = append(w.buf, tx...)
		}
	}
}

func (w *writer) ref(r VoteRef) {
	if !r.Valid {
		w.byte(0)
		return
	}
	w.byte(1)
	w.view(r.View)
	w.value(r.Val)
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrBadMessage
	}
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) view() View { return View(r.int64()) }

func (r *reader) value() Value {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.buf)) {
		r.fail()
		return ""
	}
	v := Value(r.buf[:n])
	r.buf = r.buf[n:]
	return v
}

func (r *reader) fixed(dst []byte) {
	if r.err != nil || len(r.buf) < len(dst) {
		r.fail()
		return
	}
	copy(dst, r.buf[:len(dst)])
	r.buf = r.buf[len(dst):]
}

// block reads the writer.block layout; batch selects the *-batch tail.
func (r *reader) block(batch bool) Block {
	var b Block
	b.Slot = Slot(r.int64())
	r.fixed(b.Parent[:])
	b.Payload = []byte(r.value())
	if !batch {
		return b
	}
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.buf)) { // each tx costs ≥1 byte
		r.fail()
		return b
	}
	if n > 0 {
		b.Txs = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			b.Txs = append(b.Txs, []byte(r.value()))
		}
	}
	return b
}

func (r *reader) ref() VoteRef {
	switch r.byte() {
	case 0:
		return VoteRef{}
	case 1:
		return VoteRef{Valid: true, View: r.view(), Val: r.value()}
	default:
		r.fail()
		return VoteRef{}
	}
}
