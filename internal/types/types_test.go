package types

import (
	"testing"
	"testing/quick"
)

func TestBlockIDDeterministic(t *testing.T) {
	b := Block{Slot: 3, Parent: ZeroBlockID, Payload: []byte("hello")}
	if b.ID() != b.ID() {
		t.Fatal("Block.ID is not deterministic")
	}
	other := Block{Slot: 3, Parent: ZeroBlockID, Payload: []byte("hellp")}
	if b.ID() == other.ID() {
		t.Fatal("different payloads produced the same block ID")
	}
	diffSlot := Block{Slot: 4, Parent: ZeroBlockID, Payload: []byte("hello")}
	if b.ID() == diffSlot.ID() {
		t.Fatal("different slots produced the same block ID")
	}
}

func TestBlockIDBatchSensitivity(t *testing.T) {
	base := Block{Slot: 3, Parent: ZeroBlockID, Payload: []byte("hdr")}
	empty := base
	empty.Txs = [][]byte{}
	if base.ID() != empty.ID() {
		t.Fatal("an empty batch changed the block ID; unbatched blocks must keep their historical identities")
	}
	batched := base
	batched.Txs = [][]byte{[]byte("ab"), []byte("c")}
	if batched.ID() == base.ID() {
		t.Fatal("adding a batch did not change the block ID")
	}
	// The per-tx length prefix makes the hash injective over batch
	// boundaries: ["ab","c"] and ["a","bc"] concatenate identically.
	shifted := base
	shifted.Txs = [][]byte{[]byte("a"), []byte("bc")}
	if batched.ID() == shifted.ID() {
		t.Fatal("shifting tx boundaries did not change the block ID")
	}
	if batched.NumTxs() != 2 || base.NumTxs() != 0 {
		t.Fatal("NumTxs miscounts")
	}
}

func TestBlockIDValueRoundTrip(t *testing.T) {
	f := func(slot int16, payload []byte) bool {
		id := Block{Slot: Slot(slot), Payload: payload}.ID()
		got, ok := BlockIDFromValue(id.Value())
		return ok && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockIDFromValueRejectsBadLength(t *testing.T) {
	if _, ok := BlockIDFromValue("short"); ok {
		t.Error("BlockIDFromValue accepted a short value")
	}
	if _, ok := BlockIDFromValue(""); ok {
		t.Error("BlockIDFromValue accepted an empty value")
	}
}

func TestVoteRefString(t *testing.T) {
	if got := (VoteRef{}).String(); got != "⊥" {
		t.Errorf("empty VoteRef String = %q", got)
	}
	if got := Vote(3, "a").String(); got != `(v=3,"a")` {
		t.Errorf("Vote(3, a).String() = %q", got)
	}
}

func TestKindStringsAreUnique(t *testing.T) {
	seen := make(map[string]Kind)
	for k := KindProposal; k <= KindMSFinalBatch; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if (Kind(200)).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}
