// Quickstart: four TetraBFT nodes agree on a value in exactly 5 message
// delays — the paper's headline good-case latency — expressed as one
// declarative scenario spec run on the deterministic simulator.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The whole experiment is one spec: cluster, workload, what to collect.
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Name:     "quickstart",
		Protocol: tetrabft.ScenarioTetraBFT,
		Nodes:    4,
		Workload: tetrabft.WorkloadSpec{ValuePattern: "proposal-from-node-%d"},
		Collect:  tetrabft.CollectSpec{Trace: true},
	})
	if err != nil {
		return err
	}

	// The collected trace shows the protocol's phases.
	for _, ev := range res.Trace {
		fmt.Println(ev)
	}

	fmt.Println()
	for _, tr := range res.Traffic {
		d, ok := res.Decision(tr.Node, 0)
		if !ok {
			return fmt.Errorf("node %d never decided", tr.Node)
		}
		fmt.Printf("node %d decided %q after %d message delays\n", tr.Node, d.Value, d.At)
	}
	fmt.Println("\n(the paper's Table 1: good-case latency of TetraBFT = 5 message delays)")
	return nil
}
