// Quickstart: four TetraBFT nodes agree on a value in exactly 5 message
// delays — the paper's headline good-case latency — inside the
// deterministic simulator.
package main

import (
	"fmt"
	"log"
	"os"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4

	// A collecting + printing tracer shows the protocol's phases live.
	tracer := tetrabft.TraceWriter{W: os.Stdout}

	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
	for i := 0; i < n; i++ {
		node, err := tetrabft.NewNode(tetrabft.Config{
			ID:           tetrabft.NodeID(i),
			Nodes:        n,
			InitialValue: tetrabft.Value(fmt.Sprintf("proposal-from-node-%d", i)),
			Tracer:       tracer,
		})
		if err != nil {
			return err
		}
		s.Add(node)
	}

	if err := s.Run(0, nil); err != nil {
		return err
	}
	if err := s.AgreementViolation(); err != nil {
		return err
	}

	fmt.Println()
	for i := 0; i < n; i++ {
		d, ok := s.Decision(tetrabft.NodeID(i), 0)
		if !ok {
			return fmt.Errorf("node %d never decided", i)
		}
		fmt.Printf("node %d decided %q after %d message delays\n", i, d.Val, d.At)
	}
	fmt.Println("\n(the paper's Table 1: good-case latency of TetraBFT = 5 message delays)")
	return nil
}
