// KVStore: a replicated key-value store running over real TCP sockets on
// localhost — four multi-shot TetraBFT replicas, each with a mempool,
// finalizing blocks of transactions and applying them to their local state
// machines. This is the deployment shape of the library (the other
// examples use the deterministic simulator).
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"tetrabft"
)

const (
	nodes   = 4
	target  = 6 // finalized blocks to wait for
	maxSlot = target + 3
)

type replica struct {
	id      tetrabft.NodeID
	mempool *tetrabft.Mempool
	kv      *tetrabft.KV
	node    *tetrabft.ChainNode
	runtime *tetrabft.Runtime

	mu        sync.Mutex
	finalized map[tetrabft.Slot]tetrabft.Value
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	replicas := make([]*replica, nodes)
	done := make(chan tetrabft.NodeID, nodes*target)

	for i := 0; i < nodes; i++ {
		rep := &replica{
			id:        tetrabft.NodeID(i),
			mempool:   tetrabft.NewMempool(0),
			kv:        tetrabft.NewKV(),
			finalized: make(map[tetrabft.Slot]tetrabft.Value),
		}
		node, err := tetrabft.NewChain(tetrabft.ChainConfig{
			ID:      rep.id,
			Nodes:   nodes,
			Delta:   30, // 30 ticks × 1ms: generous for loopback TCP
			MaxSlot: maxSlot,
			Payload: rep.mempool.PayloadSource(16),
		})
		if err != nil {
			return err
		}
		rep.node = node
		rt, err := tetrabft.NewRuntime(node, tetrabft.RuntimeConfig{
			ListenAddr: "127.0.0.1:0",
			OnDecide: func(slot tetrabft.Slot, val tetrabft.Value) {
				rep.mu.Lock()
				rep.finalized[slot] = val
				rep.mu.Unlock()
				done <- rep.id
			},
		})
		if err != nil {
			return err
		}
		rep.runtime = rt
		replicas[i] = rep
	}
	defer func() {
		for _, rep := range replicas {
			rep.runtime.Close()
		}
	}()

	// Wire the mesh.
	addrs := make(map[tetrabft.NodeID]string, nodes)
	for _, rep := range replicas {
		addrs[rep.id] = rep.runtime.Addr()
		fmt.Printf("replica %d listening on %s\n", rep.id, rep.runtime.Addr())
	}
	for _, rep := range replicas {
		rep.runtime.SetPeers(addrs)
	}

	// Clients submit transactions to different replicas' mempools.
	replicas[0].mempool.Submit(tetrabft.SetTx("temperature", "21C"))
	replicas[1].mempool.Submit(tetrabft.SetTx("humidity", "40%"))
	replicas[2].mempool.Submit(tetrabft.SetTx("pressure", "1013hPa"))
	replicas[3].mempool.Submit(tetrabft.SetTx("temperature", "22C"))

	for _, rep := range replicas {
		rep.runtime.Run()
	}

	// Wait for every replica to finalize the target prefix.
	want := nodes * target
	deadline := time.After(30 * time.Second)
	for got := 0; got < want; {
		select {
		case <-done:
			got++
		case <-deadline:
			return fmt.Errorf("timed out after %d of %d finalizations", got, want)
		}
	}

	// Apply every replica's finalized chain to its local state machine and
	// confirm they all agree.
	fmt.Println("\nreplicated state on every node:")
	var reference string
	for _, rep := range replicas {
		for _, b := range rep.node.FinalizedChain() {
			rep.kv.ApplyBlock(b)
		}
		state := renderState(rep.kv.Snapshot())
		fmt.Printf("  replica %d: %s\n", rep.id, state)
		if reference == "" {
			reference = state
		} else if state != reference {
			return fmt.Errorf("replica %d diverged", rep.id)
		}
	}
	fmt.Println("\nall replicas converged over real TCP ✓")
	return nil
}

func renderState(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s ", k, m[k])
	}
	if out == "" {
		return "(empty)"
	}
	return out
}
