// KVStore: a sharded replicated key-value service running over real TCP
// sockets on localhost — two 4-node multi-shot TetraBFT shard clusters plus
// a 4-node anchor cluster, fronted by an HTTP gateway that routes each key
// to its home shard. Clients are plain HTTP: POST /submit writes through
// the gateway into a shard's mempool, GET /query reads from that shard's
// decided log, and every shard periodically commits a digest of its decided
// prefix into the anchor cluster. This is the deployment shape of the
// library, and the program the CI gateway smoke runs: it exits non-zero
// unless both shards finalize, every submitted key becomes readable, and
// anchor epochs commit.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// target is the finalized-block prefix every shard must reach.
const target = 6

func run() error {
	var clientErr error
	res, err := tetrabft.RunScenarioWithGateway(tetrabft.Scenario{
		Name:     "kvstore-gateway",
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Engine:   "tcp",
		Delta:    30, // 30 ticks × 1ms: generous for loopback TCP
		Shards:   &tetrabft.ShardsSpec{Count: 2, AnchorInterval: 40},
		Workload: tetrabft.WorkloadSpec{
			Slots:     target,
			BatchSize: 8,
			TxCount:   20, // background offered load, split across shards
		},
		Stop: tetrabft.StopSpec{WallClockMS: 60000},
	}, func(base string) {
		clientErr = drive(base)
	})
	if err != nil {
		return err
	}
	if clientErr != nil {
		return clientErr
	}

	for _, s := range res.Shards {
		fmt.Printf("shard %d: finalized %d slots, %d anchor epochs through slot %d\n",
			s.Shard, s.Finalized, s.AnchorEpochs, s.AnchoredSlots)
		if s.Finalized < target {
			return fmt.Errorf("shard %d finalized only %d/%d slots", s.Shard, s.Finalized, target)
		}
		if s.AnchorEpochs < 1 {
			return fmt.Errorf("shard %d committed no anchor epoch", s.Shard)
		}
	}
	if res.AnchorEpochs < 1 {
		return fmt.Errorf("no anchor epochs committed")
	}
	fmt.Printf("anchor cluster committed %d epochs (p99 %d ms); gateway round-trips verified on both shards ✓\n",
		res.AnchorEpochs, res.AnchorLatencyP99)
	return nil
}

// drive is the HTTP client: it submits keys through the gateway until both
// shards have received one, then polls each key until the shard's decided
// log serves the written value back.
func drive(base string) error {
	router := tetrabft.ShardRouter{Shards: 2}
	byShard := map[int]string{}
	for i := 0; len(byShard) < 2 && i < 64; i++ {
		key := fmt.Sprintf("sensor-%03d", i)
		if _, taken := byShard[router.Shard(key)]; taken {
			continue
		}
		value := fmt.Sprintf("reading-%03d", i)
		resp, err := http.PostForm(base+"/submit", url.Values{"key": {key}, "value": {value}})
		if err != nil {
			return fmt.Errorf("submit %s: %w", key, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit %s: %s: %s", key, resp.Status, body)
		}
		byShard[router.Shard(key)] = key
		fmt.Printf("submitted %s=%s via shard %d\n", key, value, router.Shard(key))
	}

	deadline := time.Now().Add(30 * time.Second)
	for s, key := range byShard {
		want := "reading-" + key[len("sensor-"):]
		for {
			resp, err := http.Get(base + "/query?key=" + url.QueryEscape(key))
			if err != nil {
				return fmt.Errorf("query %s: %w", key, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var got struct {
				Shard int    `json:"shard"`
				Found bool   `json:"found"`
				Value string `json:"value"`
			}
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &got) == nil &&
				got.Found && got.Value == want {
				fmt.Printf("shard %d serves %s=%s from its decided log\n", s, key, want)
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("key %s not decided on shard %d before the deadline (%s)", key, s, body)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return scrapeMetrics(base)
}

// scrapeMetrics reads the gateway's Prometheus exposition while the service
// is still live and prints the submit counter — the line the CI gateway
// smoke greps to prove /metrics works on a running deployment.
func scrapeMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s: %s", resp.Status, body)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "gateway_submits_total ") {
			fmt.Printf("gateway metrics: %s\n", line)
			return nil
		}
	}
	return fmt.Errorf("metrics exposition has no gateway_submits_total:\n%s", body)
}
