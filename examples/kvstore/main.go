// KVStore: a replicated key-value store running over real TCP sockets on
// localhost — four multi-shot TetraBFT replicas, each with a mempool,
// finalizing blocks of transactions and applying them to their local state
// machines. The same declarative scenario spec the simulator examples use
// runs here with Engine: "tcp" — this is the deployment shape of the
// library.
package main

import (
	"fmt"
	"log"
	"sort"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// target is the finalized-block prefix every replica must reach and agree
// on — the spec's slot target and the convergence check share it.
const target = 6

func run() error {
	// Clients submit transactions to different replicas' mempools.
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Name:     "kvstore-tcp",
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Engine:   "tcp",
		Nodes:    4,
		Delta:    30, // 30 ticks × 1ms: generous for loopback TCP
		Workload: tetrabft.WorkloadSpec{
			Slots:       target, // finalized blocks to wait for
			TxsPerBlock: 16,
			Transactions: []tetrabft.TxSpec{
				{Node: 0, Op: "set", Key: "temperature", Value: "21C"},
				{Node: 1, Op: "set", Key: "humidity", Value: "40%"},
				{Node: 2, Op: "set", Key: "pressure", Value: "1013hPa"},
				{Node: 3, Op: "set", Key: "temperature", Value: "22C"},
			},
		},
		Stop:    tetrabft.StopSpec{WallClockMS: 30000},
		Collect: tetrabft.CollectSpec{Chain: true},
	})
	if err != nil {
		return err
	}
	fmt.Printf("4 replicas converged over real TCP in %d ms\n", res.FinishedAt)

	// Apply every replica's finalized chain to its local state machine and
	// confirm they all agree.
	fmt.Println("\nreplicated state on every node:")
	var reference string
	for _, nc := range res.Chains {
		kv := tetrabft.NewKV()
		// Stragglers may have finalized past the target unevenly; compare
		// the agreed prefix.
		blocks := nc.Blocks
		if len(blocks) > target {
			blocks = blocks[:target]
		}
		for _, b := range blocks {
			kv.ApplyBlock(b)
		}
		state := renderState(kv.Snapshot())
		fmt.Printf("  replica %d: %s\n", nc.Node, state)
		if reference == "" {
			reference = state
		} else if state != reference {
			return fmt.Errorf("replica %d diverged", nc.Node)
		}
	}
	fmt.Println("\nall replicas converged over real TCP ✓")
	return nil
}

func renderState(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s ", k, m[k])
	}
	if out == "" {
		return "(empty)"
	}
	return out
}
