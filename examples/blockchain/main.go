// Blockchain: multi-shot (pipelined) TetraBFT finalizes a chain of blocks
// carrying real transactions — one block per message delay, as in the
// paper's Figure 2 — and a replicated key-value store applies them. The
// transactions are part of the declarative scenario's workload; the
// example only inspects the resulting chain.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Transactions land in the named node's mempool; leaders rotate per
	// slot, so a transaction lands in the next block its receiving node
	// proposes: node i leads slots ≡ i (mod 4).
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Name:     "blockchain",
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Nodes:    4,
		Seed:     42,
		Workload: tetrabft.WorkloadSpec{
			Slots:       12, // finalized blocks to produce
			TxsPerBlock: 8,
			Transactions: []tetrabft.TxSpec{
				{Node: 0, Op: "set", Key: "alice", Value: "100 coins"},
				{Node: 1, Op: "set", Key: "bob", Value: "200 coins"},
				{Node: 2, Op: "set", Key: "carol", Value: "300 coins"},
				{Node: 3, Op: "set", Key: "dave", Value: "400 coins"},
				{Node: 0, Op: "set", Key: "alice", Value: "250 coins"}, // update, lands at slot 4
				{Node: 0, Op: "del", Key: "dave"},                      // closure, after dave's creation at slot 3
			},
		},
		Stop:    tetrabft.StopSpec{Horizon: 5000},
		Collect: tetrabft.CollectSpec{Chain: true},
	})
	if err != nil {
		return err
	}

	// Replay the finalized chain through the ledger substrate.
	store := tetrabft.NewChainStore()
	kv := tetrabft.NewKV()
	fmt.Println("finalized chain:")
	for _, b := range res.Chain {
		if err := store.Append(b); err != nil {
			return err
		}
		txs, err := tetrabft.DecodePayload(b.Payload)
		if err != nil {
			return err
		}
		applied := kv.ApplyBlock(b)
		fmt.Printf("  slot %2d  block %s  %d txs (%d applied)\n", b.Slot, b.ID(), len(txs), applied)
	}
	fmt.Printf("\nchain height: %d blocks (one finalized per message delay after warm-up)\n", store.Height())

	fmt.Println("\nreplicated key-value state:")
	for k, v := range kv.Snapshot() {
		fmt.Printf("  %-6s = %s\n", k, v)
	}

	// Every replica finalized the same slot count (Definition 2's
	// consistency is enforced by the scenario engine's agreement monitor).
	fmt.Println()
	for _, f := range res.Finalized {
		fmt.Printf("node %d finalized %d slots\n", f.Node, f.Slot)
	}
	fmt.Println("\nall replicas hold identical chains ✓")
	return nil
}
