// Blockchain: multi-shot (pipelined) TetraBFT finalizes a chain of blocks
// carrying real transactions — one block per message delay, as in the
// paper's Figure 2 — and a replicated key-value store applies them.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 4
		target  = 12 // finalized blocks to produce
		maxSlot = target + 3
	)

	// Every node runs its own mempool; clients would submit to any of them.
	mempools := make([]*tetrabft.Mempool, n)
	nodes := make([]*tetrabft.ChainNode, n)
	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 42})
	for i := 0; i < n; i++ {
		mp := tetrabft.NewMempool(0)
		mempools[i] = mp
		node, err := tetrabft.NewChain(tetrabft.ChainConfig{
			ID:      tetrabft.NodeID(i),
			Nodes:   n,
			MaxSlot: maxSlot,
			Payload: mp.PayloadSource(8), // up to 8 txs per block
		})
		if err != nil {
			return err
		}
		nodes[i] = node
		s.Add(node)
	}

	// Seed some account activity across the nodes' mempools. Leaders
	// rotate per slot, so a transaction lands in the next block its
	// receiving node proposes: node i leads slots ≡ i (mod 4).
	accounts := []string{"alice", "bob", "carol", "dave"}
	for i, acct := range accounts {
		mempools[i%n].Submit(tetrabft.SetTx(acct, fmt.Sprintf("%d coins", 100*(i+1))))
	}
	mempools[0].Submit(tetrabft.SetTx("alice", "250 coins")) // update, lands at slot 4
	mempools[0].Submit(tetrabft.DelTx("dave"))               // closure, after dave's creation at slot 3

	if err := s.Run(5000, nil); err != nil {
		return err
	}
	if err := s.AgreementViolation(); err != nil {
		return err
	}

	// Replay node 0's finalized chain through the ledger substrate.
	store := tetrabft.NewChainStore()
	kv := tetrabft.NewKV()
	fmt.Println("finalized chain:")
	for _, b := range nodes[0].FinalizedChain() {
		if err := store.Append(b); err != nil {
			return err
		}
		txs, err := tetrabft.DecodePayload(b.Payload)
		if err != nil {
			return err
		}
		applied := kv.ApplyBlock(b)
		fmt.Printf("  slot %2d  block %s  %d txs (%d applied)\n", b.Slot, b.ID(), len(txs), applied)
	}
	fmt.Printf("\nchain height: %d blocks (one finalized per message delay after warm-up)\n", store.Height())

	fmt.Println("\nreplicated key-value state:")
	for k, v := range kv.Snapshot() {
		fmt.Printf("  %-6s = %s\n", k, v)
	}

	// Every replica's chain is identical (Definition 2's consistency).
	for i := 1; i < n; i++ {
		a, b := nodes[0].FinalizedChain(), nodes[i].FinalizedChain()
		for j := range a {
			if j < len(b) && a[j].ID() != b[j].ID() {
				return fmt.Errorf("nodes 0 and %d diverge at slot %d", i, j+1)
			}
		}
	}
	fmt.Println("\nall replicas hold identical chains ✓")
	return nil
}
