// Heterogeneous: TetraBFT running over Federated-Byzantine-Agreement-style
// quorum slices instead of a global n ≥ 3f+1 threshold — the paper's
// Section 7 observation that unauthenticated protocols transfer to
// heterogeneous trust models (Stellar, XRP Ledger) where quorum
// certificates cannot work.
//
// Five organizations declare their own slices. Because every pair of
// resulting quorums intersects in enough honest organizations, the
// unchanged TetraBFT rules stay safe and live.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Organizations 0-2 form a tightly-knit core (each trusts the other
	// two); organizations 3 and 4 are satellites that each trust the core
	// majority plus the other satellite.
	core2of3 := [][]tetrabft.NodeID{{0, 1}, {0, 2}, {1, 2}}
	slices := map[tetrabft.NodeID][]tetrabft.NodeSet{}
	for _, member := range []tetrabft.NodeID{0, 1, 2} {
		for _, pair := range core2of3 {
			slices[member] = append(slices[member], tetrabft.QuorumSet(member, pair[0], pair[1]))
		}
	}
	for _, satellite := range []tetrabft.NodeID{3, 4} {
		other := tetrabft.NodeID(7 - satellite) // 3 ↔ 4
		for _, pair := range core2of3 {
			slices[satellite] = append(slices[satellite],
				tetrabft.QuorumSet(satellite, pair[0], pair[1]),
				tetrabft.QuorumSet(satellite, other, pair[0], pair[1]),
			)
		}
	}
	sys, err := tetrabft.NewSlices(slices)
	if err != nil {
		return err
	}
	fmt.Println("quorum system: 3-org core (2-of-3 slices) + 2 satellites")

	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 3})
	for _, id := range []tetrabft.NodeID{0, 1, 2, 3, 4} {
		node, err := tetrabft.NewNode(tetrabft.Config{
			ID:           id,
			Quorum:       sys,
			InitialValue: tetrabft.Value(fmt.Sprintf("ledger-state-from-org-%d", id)),
		})
		if err != nil {
			return err
		}
		s.Add(node)
	}
	if err := s.Run(3000, nil); err != nil {
		return err
	}
	if err := s.AgreementViolation(); err != nil {
		return err
	}

	for _, id := range []tetrabft.NodeID{0, 1, 2, 3, 4} {
		d, ok := s.Decision(id, 0)
		if !ok {
			return fmt.Errorf("organization %d never decided", id)
		}
		fmt.Printf("organization %d decided %q at t=%d\n", id, d.Val, d.At)
	}
	fmt.Println("\nheterogeneous trust, no signatures, one decision ✓")
	return nil
}
