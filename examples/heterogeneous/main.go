// Heterogeneous: TetraBFT running over Federated-Byzantine-Agreement-style
// quorum slices instead of a global n ≥ 3f+1 threshold — the paper's
// Section 7 observation that unauthenticated protocols transfer to
// heterogeneous trust models (Stellar, XRP Ledger) where quorum
// certificates cannot work.
//
// Five organizations declare their own slices — right inside the scenario
// spec. Because every pair of resulting quorums intersects in enough
// honest organizations, the unchanged TetraBFT rules stay safe and live.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Organizations 0-2 form a tightly-knit core (each trusts the other
	// two); organizations 3 and 4 are satellites that each trust the core
	// majority plus the other satellite.
	core2of3 := [][]tetrabft.NodeID{{0, 1}, {0, 2}, {1, 2}}
	var slices []tetrabft.SliceSpec
	for _, member := range []tetrabft.NodeID{0, 1, 2} {
		var ss [][]tetrabft.NodeID
		for _, pair := range core2of3 {
			ss = append(ss, []tetrabft.NodeID{member, pair[0], pair[1]})
		}
		slices = append(slices, tetrabft.SliceSpec{Node: member, Slices: ss})
	}
	for _, satellite := range []tetrabft.NodeID{3, 4} {
		other := tetrabft.NodeID(7 - satellite) // 3 ↔ 4
		var ss [][]tetrabft.NodeID
		for _, pair := range core2of3 {
			ss = append(ss,
				[]tetrabft.NodeID{satellite, pair[0], pair[1]},
				[]tetrabft.NodeID{satellite, other, pair[0], pair[1]},
			)
		}
		slices = append(slices, tetrabft.SliceSpec{Node: satellite, Slices: ss})
	}
	fmt.Println("quorum system: 3-org core (2-of-3 slices) + 2 satellites")

	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Name:     "heterogeneous",
		Protocol: tetrabft.ScenarioTetraBFT,
		Quorum:   &tetrabft.QuorumSpec{Slices: slices},
		Seed:     3,
		Workload: tetrabft.WorkloadSpec{ValuePattern: "ledger-state-from-org-%d"},
		Stop:     tetrabft.StopSpec{Horizon: 3000},
	})
	if err != nil {
		return err
	}

	for _, tr := range res.Traffic {
		d, ok := res.Decision(tr.Node, 0)
		if !ok {
			return fmt.Errorf("organization %d never decided", tr.Node)
		}
		fmt.Printf("organization %d decided %q at t=%d\n", tr.Node, d.Value, d.At)
	}
	fmt.Println("\nheterogeneous trust, no signatures, one decision ✓")
	return nil
}
