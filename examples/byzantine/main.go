// Byzantine: the paper's Figure 3 scenario — a crashed leader stalls the
// pipeline, the 9Δ view timers fire, a per-slot view change aborts the
// in-flight blocks (at most 5) and the chain recovers and keeps growing,
// with full agreement throughout.
package main

import (
	"fmt"
	"log"

	"tetrabft"
	"tetrabft/internal/byz"
	"tetrabft/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 4
		maxSlot = 12
	)

	traceLog := &tetrabft.TraceLog{}
	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 7})
	var honest []*tetrabft.ChainNode
	for i := 0; i < n; i++ {
		if i == 3 {
			// Node 3 has crashed: it leads every 4th slot, so the pipeline
			// stalls whenever its turn comes.
			s.Add(byz.Silent{NodeID: types.NodeID(i)})
			fmt.Println("node 3 is crashed (it leads slots 3, 7, 11, ...)")
			continue
		}
		node, err := tetrabft.NewChain(tetrabft.ChainConfig{
			ID:      tetrabft.NodeID(i),
			Nodes:   n,
			Delta:   10, // Δ = 10 ticks ⇒ view timeout 9Δ = 90
			MaxSlot: maxSlot,
			Tracer:  traceLog,
		})
		if err != nil {
			return err
		}
		honest = append(honest, node)
		s.Add(node)
	}

	if err := s.Run(5000, nil); err != nil {
		return err
	}
	if err := s.AgreementViolation(); err != nil {
		return fmt.Errorf("agreement violated: %w", err)
	}

	fmt.Println("\nwhat happened (node 0's protocol events):")
	interesting := map[string]bool{"view-change": true, "enter-view": true, "adopt-final": true}
	shown := 0
	for _, ev := range traceLog.Events() {
		if ev.Node != 0 {
			continue
		}
		if ev.Type == "finalize" && ev.Slot <= 3 {
			fmt.Printf("  %s\n", ev)
			continue
		}
		if interesting[ev.Type] && shown < 12 {
			fmt.Printf("  %s\n", ev)
			shown++
		}
	}

	fmt.Println("\noutcome:")
	for _, node := range honest {
		fmt.Printf("  node %d finalized %d slots\n", node.ID(), node.FinalizedSlot())
	}
	chain := honest[0].FinalizedChain()
	if len(chain) == 0 {
		return fmt.Errorf("nothing finalized")
	}
	fmt.Printf("\nthe chain survived %d leader crashes and kept growing ✓\n", countEpisodes(chain))
	return nil
}

// countEpisodes counts how many of the crashed node's leader turns fell
// inside the finalized range.
func countEpisodes(chain []tetrabft.Block) int {
	count := 0
	for _, b := range chain {
		if (int64(b.Slot))%4 == 3 { // slots led by node 3 in view 0
			count++
		}
	}
	return count
}
