// Byzantine: the paper's Figure 3 scenario — a crashed leader stalls the
// pipeline, the 9Δ view timers fire, a per-slot view change aborts the
// in-flight blocks (at most 5) and the chain recovers and keeps growing,
// with full agreement throughout. The whole setup is one declarative
// fault-schedule entry in the scenario spec.
package main

import (
	"fmt"
	"log"

	"tetrabft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Node 3 has crashed: it leads every 4th slot, so the pipeline stalls
	// whenever its turn comes.
	fmt.Println("node 3 is crashed (it leads slots 3, 7, 11, ...)")
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Name:     "figure-3",
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Nodes:    4,
		Seed:     7,
		Delta:    10, // Δ = 10 ticks ⇒ view timeout 9Δ = 90
		Faults:   []tetrabft.FaultSpec{{Type: tetrabft.FaultSilent, Node: 3}},
		Workload: tetrabft.WorkloadSpec{MaxSlot: 12},
		Stop:     tetrabft.StopSpec{Horizon: 5000},
		Collect:  tetrabft.CollectSpec{Trace: true, Chain: true},
	})
	if err != nil {
		return err
	}

	fmt.Println("\nwhat happened (node 0's protocol events):")
	interesting := map[string]bool{"view-change": true, "enter-view": true, "adopt-final": true}
	shown := 0
	for _, ev := range res.Trace {
		if ev.Node != 0 {
			continue
		}
		if ev.Type == "finalize" && ev.Slot <= 3 {
			fmt.Printf("  %s\n", ev)
			continue
		}
		if interesting[ev.Type] && shown < 12 {
			fmt.Printf("  %s\n", ev)
			shown++
		}
	}

	fmt.Println("\noutcome:")
	for _, f := range res.Finalized {
		fmt.Printf("  node %d finalized %d slots\n", f.Node, f.Slot)
	}
	if len(res.Chain) == 0 {
		return fmt.Errorf("nothing finalized")
	}
	fmt.Printf("\nthe chain survived %d leader crashes and kept growing ✓\n", countEpisodes(res.Chain))
	return nil
}

// countEpisodes counts how many of the crashed node's leader turns fell
// inside the finalized range.
func countEpisodes(chain []tetrabft.Block) int {
	count := 0
	for _, b := range chain {
		if (int64(b.Slot))%4 == 3 { // slots led by node 3 in view 0
			count++
		}
	}
	return count
}
