package tetrabft_test

// This file regenerates every table and figure of the paper as Go
// benchmarks (go test -bench=. -benchmem). Each benchmark reports the
// paper's observables as custom metrics so the comparison with Table 1 and
// Figures 2-3 can be read straight from the benchmark output; the
// assertions themselves live in internal/bench's tests and EXPERIMENTS.md
// records paper-vs-measured values.

import (
	"fmt"
	"testing"

	"tetrabft/internal/bench"
	"tetrabft/internal/core"
	"tetrabft/internal/quorum"
	"tetrabft/internal/sim"
	"tetrabft/internal/types"
)

// BenchmarkTable1Latency regenerates Table 1's latency columns (E1): the
// good-case and view-change latency of TetraBFT and every baseline, in
// message delays.
func BenchmarkTable1Latency(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table1(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		name := metricName(string(row.Protocol))
		b.ReportMetric(float64(row.GoodCaseDelays), name+"_good_delays")
		if row.ViewChangeDelays >= 0 {
			b.ReportMetric(float64(row.ViewChangeDelays), name+"_vc_delays")
		}
	}
}

// BenchmarkTable1Communication regenerates Table 1's communication column
// (E2): total bytes per instance as n grows — TetraBFT O(n²) vs PBFT's
// O(n³) view change.
func BenchmarkTable1Communication(b *testing.B) {
	var rows []bench.CommRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.CommunicationSweep([]int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		key := fmt.Sprintf("%s_%s_n%d_bytes", metricName(string(row.Protocol)), metricName(row.Scenario), row.N)
		b.ReportMetric(float64(row.TotalBytes), key)
	}
}

// BenchmarkTable1Storage regenerates Table 1's storage column (E3):
// persistent bytes after repeated failed views.
func BenchmarkTable1Storage(b *testing.B) {
	var rows []bench.StorageRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.StorageSweep(6)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(float64(row.Bytes), metricName(string(row.Protocol))+"_storage_bytes")
	}
}

// BenchmarkResponsiveness regenerates the responsiveness column (E4):
// post-timeout recovery as the conservative bound Δ grows while the actual
// delay stays δ = 1.
func BenchmarkResponsiveness(b *testing.B) {
	var rows []bench.RespRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Responsiveness([]types.Duration{10, 50})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		key := fmt.Sprintf("%s_delta%d_recovery", metricName(string(row.Protocol)), row.Delta)
		b.ReportMetric(float64(row.Recovery), key)
	}
}

// BenchmarkFig2Pipeline regenerates Figure 2 (E5): one finalized block per
// message delay, 5× single-shot throughput.
func BenchmarkFig2Pipeline(b *testing.B) {
	var res bench.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig2Pipeline(20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanInterval, "delays_per_block")
	b.ReportMetric(res.ThroughputSpeedup, "speedup_vs_singleshot")
}

// BenchmarkFig3ViewChange regenerates Figure 3 (E6/E9): ≤5 aborted blocks
// and post-view-change notarization within 5Δ.
func BenchmarkFig3ViewChange(b *testing.B) {
	var res bench.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig3ViewChange()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.AbortedSlots), "aborted_slots")
	b.ReportMetric(float64(res.RecoveryDelta), "recovery_ticks")
	b.ReportMetric(float64(res.DeltaBound), "bound_5delta_ticks")
}

// BenchmarkFormalVerification regenerates the Section 5 reproduction (E7):
// model-checking throughput over the abstract spec.
func BenchmarkFormalVerification(b *testing.B) {
	var res bench.VerificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Verification(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("verification found %d violations", res.Violations)
		}
	}
	b.ReportMetric(float64(res.BFSStates), "bfs_states")
	b.ReportMetric(float64(res.WalkStates), "walk_states")
	b.ReportMetric(float64(res.InductionSteps), "induction_steps")
}

// BenchmarkTimeoutBound regenerates the Section 3.2 timeout analysis (E8):
// worst-case post-GST recovery against the 9Δ+2Δ+7δ bound.
func BenchmarkTimeoutBound(b *testing.B) {
	var res bench.TimeoutBoundResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.TimeoutBound(10, 10)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDecided || !res.AllAgreed {
			b.Fatal("timeout-bound run failed to decide or agree")
		}
	}
	b.ReportMetric(float64(res.WorstRecovery), "worst_recovery_ticks")
	b.ReportMetric(float64(res.PaperBound), "paper_bound_ticks")
}

// BenchmarkAblationTimeout sweeps the view-timeout factor around the
// paper's 9Δ choice (Section 3.2): too small livelocks, too large slows
// crash recovery.
func BenchmarkAblationTimeout(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationTimeout([]int{2, 9, 18})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		prefix := fmt.Sprintf("factor%d", row.Factor)
		good := float64(-1)
		if row.GoodDecided {
			good = float64(row.GoodDecideAt)
		}
		b.ReportMetric(good, prefix+"_good_decide_at")
		if row.SilentDecided {
			b.ReportMetric(float64(row.SilentDecideAt), prefix+"_crash_decide_at")
		}
	}
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkGoodCaseRun measures simulator + protocol throughput for one
// complete 4-node single-shot instance.
func BenchmarkGoodCaseRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sim.New(sim.Config{Seed: int64(i)})
		for id := 0; id < 4; id++ {
			n, err := core.NewNode(core.Config{ID: types.NodeID(id), Nodes: 4, InitialValue: "v"})
			if err != nil {
				b.Fatal(err)
			}
			r.Add(n)
		}
		if err := r.Run(0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaderSafeValue measures Rule 1 (Algorithm 4) on a loaded
// suggest set.
func BenchmarkLeaderSafeValue(b *testing.B) {
	qs := quorum.MustThreshold(10)
	suggests := make(map[types.NodeID]types.SuggestMsg, 10)
	for i := 0; i < 10; i++ {
		suggests[types.NodeID(i)] = types.SuggestMsg{
			View:      8,
			Vote2:     types.Vote(types.View(i%7), types.Value(fmt.Sprintf("val-%d", i%3))),
			PrevVote2: types.Vote(types.View(i%5), types.Value(fmt.Sprintf("val-%d", (i+1)%3))),
			Vote3:     types.Vote(types.View(i%6), types.Value(fmt.Sprintf("val-%d", i%3))),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LeaderSafeValue(qs, 0, suggests, 8, "init")
	}
}

// BenchmarkProposalSafe measures Rule 3 (Algorithm 5) on a loaded proof set.
func BenchmarkProposalSafe(b *testing.B) {
	qs := quorum.MustThreshold(10)
	proofs := make(map[types.NodeID]types.ProofMsg, 10)
	for i := 0; i < 10; i++ {
		proofs[types.NodeID(i)] = types.ProofMsg{
			View:      8,
			Vote1:     types.Vote(types.View(i%7), types.Value(fmt.Sprintf("val-%d", i%3))),
			PrevVote1: types.Vote(types.View(i%5), types.Value(fmt.Sprintf("val-%d", (i+1)%3))),
			Vote4:     types.Vote(types.View(i%6), types.Value(fmt.Sprintf("val-%d", i%3))),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ProposalSafe(qs, 0, proofs, 8, "val-1")
	}
}

// BenchmarkEncodeDecode measures the wire codec round trip for the largest
// common message shape.
func BenchmarkEncodeDecode(b *testing.B) {
	msg := types.SuggestMsg{
		View:      12,
		Vote2:     types.Vote(11, "value-abcdef"),
		PrevVote2: types.Vote(9, "value-ghijkl"),
		Vote3:     types.Vote(10, "value-abcdef"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := types.Encode(msg)
		if _, err := types.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBlocks measures end-to-end multi-shot throughput in
// finalized blocks per second of wall time.
func BenchmarkPipelineBlocks(b *testing.B) {
	const slots = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig2Pipeline(slots)
		if err != nil {
			b.Fatal(err)
		}
		if res.Slots != slots {
			b.Fatal("short pipeline run")
		}
	}
	blocksPerOp := float64(slots)
	b.ReportMetric(blocksPerOp, "blocks/op")
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ', r == '-', r == '.':
			out = append(out, '_')
		}
	}
	return string(out)
}
