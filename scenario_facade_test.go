package tetrabft_test

import (
	"testing"

	"tetrabft"
)

// TestScenarioFacade runs a declarative scenario through the public façade:
// spec in, result out, nothing else to wire.
func TestScenarioFacade(t *testing.T) {
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Protocol: tetrabft.ScenarioTetraBFT,
		Nodes:    4,
		Workload: tetrabft.WorkloadSpec{ValuePattern: "proposal-%d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res.Decision(0, 0)
	if !ok {
		t.Fatal("no decision")
	}
	if d.Value != "proposal-0" || d.At != 5 {
		t.Errorf("decision (%q, t=%d), want (proposal-0, 5)", d.Value, d.At)
	}
	if res.FirstDecisionAt != 5 || res.DecidedCount != 4 {
		t.Errorf("first=%d decided=%d, want 5 and 4", res.FirstDecisionAt, res.DecidedCount)
	}
}

// TestScenarioFacadeFaults exercises the fault-schedule exports: a crashed
// leader forces the view-change path, a partition delays it further.
func TestScenarioFacadeFaults(t *testing.T) {
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Protocol: tetrabft.ScenarioTetraBFT,
		Nodes:    4,
		Faults:   []tetrabft.FaultSpec{{Type: tetrabft.FaultSilent, Node: 0}},
		Stop:     tetrabft.StopSpec{Horizon: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDecisionAt <= 5 {
		t.Errorf("crashed leader decided at t=%d, expected a view-change delay", res.FirstDecisionAt)
	}
}

// TestScenarioFacadeParse round-trips a JSON spec through the façade.
func TestScenarioFacadeParse(t *testing.T) {
	sc, err := tetrabft.ParseScenario([]byte(`{"protocol": "tetrabft", "nodes": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tetrabft.RunScenario(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := tetrabft.ParseScenario([]byte(`{"nodes": 4, "protocoll": "x"}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestScenarioFacadeNamed checks the bundled library is reachable and
// runnable from the façade.
func TestScenarioFacadeNamed(t *testing.T) {
	if len(tetrabft.NamedScenarios()) == 0 {
		t.Fatal("no bundled scenarios")
	}
	sc, ok := tetrabft.ScenarioByName("good-case")
	if !ok {
		t.Fatal("good-case missing")
	}
	res, err := tetrabft.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecidedCount != 4 {
		t.Errorf("decided = %d, want 4", res.DecidedCount)
	}
}

// TestPartitionFacade uses the exported Partition adversary directly with
// the raw simulator (the non-declarative escape hatch stays available).
func TestPartitionFacade(t *testing.T) {
	s := tetrabft.NewSim(tetrabft.SimConfig{
		Seed: 1,
		Delay: tetrabft.PerLinkDelay{
			Default: 1,
			Links:   map[[2]tetrabft.NodeID]tetrabft.Duration{{0, 1}: 3},
		},
		Adversary: &tetrabft.Partition{Groups: [][]tetrabft.NodeID{{0, 1}, {2, 3}}, To: 100},
	})
	for i := 0; i < 4; i++ {
		n, err := tetrabft.NewNode(tetrabft.Config{ID: tetrabft.NodeID(i), Nodes: 4, InitialValue: "v"})
		if err != nil {
			t.Fatal(err)
		}
		s.Add(n)
	}
	if err := s.Run(4000, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AgreementViolation(); err != nil {
		t.Fatal(err)
	}
	if got := s.DecidedCount(0); got != 4 {
		t.Errorf("decided = %d, want 4 after the partition heals", got)
	}
}
