package tetrabft_test

import (
	"errors"
	"testing"

	"tetrabft"
)

// TestCapacityFacade runs a tiny knee search through the public façade: a
// plan in, probes and a knee out.
func TestCapacityFacade(t *testing.T) {
	res, err := tetrabft.RunCapacity(tetrabft.CapacityPlan{
		Name: "facade",
		Base: tetrabft.Scenario{
			Protocol: tetrabft.ScenarioTetraBFTMulti,
			Nodes:    4,
			Workload: tetrabft.WorkloadSpec{
				Slots:     400,
				BatchSize: 8,
				Window:    2,
				Arrival:   &tetrabft.ArrivalSpec{Process: tetrabft.ArrivalPoisson, Rate: 1},
			},
			Stop: tetrabft.StopSpec{Horizon: 800},
		},
		MinRate:   10,
		MaxRate:   4000,
		LoadTicks: 200,
		Assert:    []string{"max_backlog <= 0", "max_tx_p99 <= 150"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || !res.Saturated || res.KneeRate == 0 {
		t.Fatalf("knee=%d saturated=%v pass=%v, want a saturated knee", res.KneeRate, res.Saturated, res.Pass)
	}
	if len(res.Probes) < 3 {
		t.Fatalf("only %d probes — the bracket should have bisected", len(res.Probes))
	}
}

// TestCapacityFacadeNamed checks the bundled plan registry and the JSON
// plan path are reachable through the façade.
func TestCapacityFacadeNamed(t *testing.T) {
	cp, ok := tetrabft.CapacityPlanByName("tetrabft-multi-capacity")
	if !ok {
		t.Fatal("bundled capacity plan missing")
	}
	if len(tetrabft.NamedCapacityPlans()) == 0 {
		t.Fatal("no bundled capacity plans")
	}
	data, err := cp.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := tetrabft.ParseCapacityPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != cp.Name || back.MaxRate != cp.MaxRate {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
}

// TestCapacityFacadeRateWithoutCount pins the exported named error: a
// paced stream with no bound is rejected, and tx_count is the knob that
// wins.
func TestCapacityFacadeRateWithoutCount(t *testing.T) {
	_, err := tetrabft.RunScenario(tetrabft.Scenario{
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Nodes:    4,
		Workload: tetrabft.WorkloadSpec{Slots: 4, TxRate: 100},
		Stop:     tetrabft.StopSpec{Horizon: 1000},
	})
	if !errors.Is(err, tetrabft.ErrRateWithoutCount) {
		t.Fatalf("want ErrRateWithoutCount, got %v", err)
	}
}

// TestWorkloadFacadeCohortsAndPhases drives the full open-loop vocabulary
// through the façade: process, cohorts, phases.
func TestWorkloadFacadeCohortsAndPhases(t *testing.T) {
	res, err := tetrabft.RunScenario(tetrabft.Scenario{
		Protocol: tetrabft.ScenarioTetraBFTMulti,
		Nodes:    4,
		Workload: tetrabft.WorkloadSpec{
			Slots:   20,
			TxCount: 60,
			Arrival: &tetrabft.ArrivalSpec{Process: tetrabft.ArrivalGamma, Rate: 50, Shape: 0.5},
			Cohorts: []tetrabft.CohortSpec{
				{Name: "hot", Weight: 3, Keys: 2},
				{Name: "cold", Weight: 1, Keys: 64, TxBytes: 128},
			},
			Phases: []tetrabft.PhaseSpec{
				{Duration: 50, RateFactor: 2},
				{Duration: 50, RateFactor: 0.5},
			},
		},
		Stop: tetrabft.StopSpec{Horizon: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedTxs != 60 || res.DecidedTxs == 0 {
		t.Fatalf("offered=%d decided=%d, want the mixed stream to flow", res.OfferedTxs, res.DecidedTxs)
	}
}
