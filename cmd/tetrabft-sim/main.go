// Command tetrabft-sim runs TetraBFT scenarios on the deterministic
// discrete-event simulator and prints what happened: decision times (in
// message delays), per-node traffic, and optionally the full protocol
// trace.
//
// Scenarios come from two equivalent sources: the flags below (quick
// one-liners), or a declarative JSON spec via -scenario file.json (the
// full cluster × faults × network × workload matrix; see EXPERIMENTS.md
// for the spec reference and examples/scenarios/ for ready-made specs).
// The flags themselves just assemble a spec, so a flag-driven run and its
// JSON equivalent produce identical output.
//
// Observability flags compose with either source: -v adds the stage
// latency breakdown and the metrics snapshot, -trace-out exports the
// protocol trace as Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing), and -cpuprofile/-memprofile capture pprof profiles
// of the run itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tetrabft/internal/obs"
	"tetrabft/internal/scenario"
	"tetrabft/internal/trace"
	"tetrabft/internal/types"
)

// outputFlags shape what the run reports, not what it does; they compose
// with -scenario instead of clashing with it.
var outputFlags = map[string]bool{
	"scenario":   true,
	"v":          true,
	"trace-out":  true,
	"cpuprofile": true,
	"memprofile": true,
}

func main() {
	var (
		n            = flag.Int("n", 4, "cluster size")
		silent       = flag.Int("silent", 0, "number of silent (crashed) nodes, taken from the lowest IDs")
		multi        = flag.Bool("multi", false, "run multi-shot (pipelined) TetraBFT instead of single-shot")
		shards       = flag.Int("shards", 0, "run the sharded service layer with this many shard clusters plus an anchor cluster (implies -multi)")
		slots        = flag.Int("slots", 10, "finalized slots to target in multi-shot mode")
		txs          = flag.Int("txs", 0, "multi-shot offered load: this many transactions streamed through batched blocks")
		rate         = flag.Int64("rate", 0, "offered-load arrival rate, transactions per 100 ticks (0 = all at t=0)")
		batch        = flag.Int("batch", 0, "per-block transaction batch cap (0 = default 8)")
		window       = flag.Int("window", 0, "pipeline window: slots proposed optimistically ahead of the notarization rule (0 = paper's rule)")
		seed         = flag.Int64("seed", 1, "simulation seed")
		delta        = flag.Int64("delta", 10, "network bound Δ in ticks (timeout = 9Δ)")
		gst          = flag.Int64("gst", 0, "global stabilization time (0 = synchronous from the start)")
		drop         = flag.Float64("drop", 0.9, "pre-GST message loss probability")
		showTrace    = flag.Bool("trace", false, "print the protocol event trace")
		horizon      = flag.Int64("horizon", 100000, "simulation horizon in ticks")
		scenarioPath = flag.String("scenario", "", "run a declarative JSON scenario spec instead of the flags")
		verbose      = flag.Bool("v", false, "print the stage latency breakdown and the metrics snapshot")
		traceOut     = flag.String("trace-out", "", "write the protocol trace as Chrome trace-event JSON to this file (Perfetto-loadable)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()

	var sc scenario.Scenario
	if *scenarioPath != "" {
		// The spec file is the whole run; silently dropping other
		// explicitly-set scenario flags would mislead. Output-side flags
		// (-v, -trace-out, profiles) are exempt: they report on the run
		// the spec declares.
		var clash []string
		flag.Visit(func(f *flag.Flag) {
			if !outputFlags[f.Name] {
				clash = append(clash, "-"+f.Name)
			}
		})
		if len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "tetrabft-sim: -scenario cannot be combined with %s (the spec file declares the whole run)\n", strings.Join(clash, " "))
			os.Exit(1)
		}
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
			os.Exit(1)
		}
		sc, err = scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
			os.Exit(1)
		}
	} else {
		sc = fromFlags(*n, *silent, *multi, *shards, *slots, *txs, *rate, *batch, *window, *seed, *delta, *gst, *drop, *showTrace, *horizon)
	}
	// printTrace is the pre-observability contract: the raw trace goes to
	// stdout only when the flags or the spec asked for it, not when
	// -trace-out quietly turns collection on for the export.
	printTrace := sc.Collect.Trace
	if *verbose {
		sc.Collect.Stages = true
		sc.Collect.Metrics = true
	}
	if *traceOut != "" {
		sc.Collect.Trace = true
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
		os.Exit(1)
	}
	runErr := run(sc, printTrace, *verbose, *traceOut)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sim:", runErr)
		os.Exit(1)
	}
}

// fromFlags assembles the declarative spec the flag set describes.
func fromFlags(n, silent int, multi bool, shards, slots, txs int, rate int64, batch, window int, seed, delta, gst int64, drop float64, showTrace bool, horizon int64) scenario.Scenario {
	sc := scenario.Scenario{
		Protocol: scenario.TetraBFT,
		Nodes:    n,
		Seed:     seed,
		Delta:    delta,
		Network:  scenario.NetworkSpec{GST: gst, DropBeforeGST: drop},
		Workload: scenario.WorkloadSpec{ValuePattern: "value-of-node-%d"},
		Stop:     scenario.StopSpec{Horizon: horizon},
		Collect:  scenario.CollectSpec{Trace: showTrace},
	}
	if shards > 0 {
		// The sharded service layer: no flat membership, per-shard offered
		// load, horizon-only stop; chains and traces are per-shard and not
		// collectable, so validation rejects -trace here.
		sc.Protocol = scenario.TetraBFTMulti
		sc.Nodes = 0
		sc.Shards = &scenario.ShardsSpec{Count: shards}
		sc.Workload = scenario.WorkloadSpec{
			Slots:   int64(slots),
			TxCount: txs, TxRate: rate, BatchSize: batch, Window: window,
		}
		return sc
	}
	if multi {
		sc.Protocol = scenario.TetraBFTMulti
		sc.Workload = scenario.WorkloadSpec{
			MaxSlot: int64(slots + 3),
			TxCount: txs, TxRate: rate, BatchSize: batch, Window: window,
		}
		sc.Collect.Chain = true
	}
	for i := 0; i < silent; i++ {
		sc.Faults = append(sc.Faults, scenario.FaultSpec{Type: scenario.FaultSilent, Node: types.NodeID(i)})
	}
	return sc
}

func run(sc scenario.Scenario, printTrace, verbose bool, traceOut string) error {
	res, err := scenario.Run(sc)
	if err != nil {
		// A failed run still returns what it collected; the trace leading
		// up to an agreement violation is exactly what one wants to see.
		if res != nil {
			for _, ev := range res.Trace {
				fmt.Println(ev.String())
			}
			if traceOut != "" {
				exportTrace(traceOut, res.Trace)
			}
		}
		return err
	}
	if printTrace {
		for _, ev := range res.Trace {
			fmt.Println(ev.String())
		}
	}
	if traceOut != "" {
		if err := exportTrace(traceOut, res.Trace); err != nil {
			return err
		}
	}

	if sc.Engine == scenario.EngineTCP {
		fmt.Printf("run finished after %dms wall clock\n", res.FinishedAt)
	} else {
		fmt.Printf("simulation finished at t=%d (%d events)\n", res.FinishedAt, res.Events)
	}
	if len(res.Shards) > 0 { // sharded service layer
		for _, s := range res.Shards {
			fmt.Printf("shard %d: finalized %d slots, %d txs decided (commit latency p50 %d, p99 %d), %d anchor epochs through slot %d\n",
				s.Shard, s.Finalized, s.DecidedTxs, s.TxLatencyP50, s.TxLatencyP99, s.AnchorEpochs, s.AnchoredSlots)
		}
		fmt.Printf("anchor cluster: %d epochs committed (anchor latency p50 %d, p99 %d)\n",
			res.AnchorEpochs, res.AnchorLatencyP50, res.AnchorLatencyP99)
		if res.DecidedTxs > 0 {
			fmt.Printf("decided transactions: %d aggregate (commit latency p50 %d, p99 %d)\n",
				res.DecidedTxs, res.TxLatencyP50, res.TxLatencyP99)
		}
	} else if len(res.Finalized) > 0 { // multi-shot
		for _, f := range res.Finalized {
			fmt.Printf("node %d finalized %d slots\n", f.Node, f.Slot)
		}
		for _, b := range res.Chain {
			if b.NumTxs() > 0 {
				fmt.Printf("  slot %2d  block %s  (%d txs, %d-byte payload)\n", b.Slot, b.ID(), b.NumTxs(), len(b.Payload))
			} else {
				fmt.Printf("  slot %2d  block %s  (%d-byte payload)\n", b.Slot, b.ID(), len(b.Payload))
			}
		}
		if res.DecidedTxs > 0 {
			fmt.Printf("decided transactions: %d (commit latency p50 %d, p99 %d ticks)\n",
				res.DecidedTxs, res.TxLatencyP50, res.TxLatencyP99)
		}
	} else {
		for _, tr := range res.Traffic {
			if d, ok := res.Decision(tr.Node, 0); ok {
				fmt.Printf("node %d decided %q at t=%d (message delays)\n", tr.Node, d.Value, d.At)
			} else {
				fmt.Printf("node %d did not decide\n", tr.Node)
			}
		}
	}
	for _, tr := range res.Transport {
		fmt.Printf("replica %d links: %d reconnects, %d frames dropped, %d chaos-dropped, %d chaos-duplicated\n",
			tr.Node, tr.Reconnects, tr.DroppedFrames, tr.ChaosDropped, tr.ChaosDuplicated)
	}
	if res.MaxStorageBytes > 0 {
		fmt.Printf("storage: %d bytes max persistent state\n", res.MaxStorageBytes)
	}
	fmt.Printf("traffic: %d total bytes sent, %d messages dropped\n", res.TotalSentBytes, res.Dropped)
	if verbose {
		printObservability(sc, res)
	}
	return nil
}

// printObservability renders the -v extras: the stage latency breakdown
// (per shard first when the run is sharded, then pooled) and the metrics
// snapshot.
func printObservability(sc scenario.Scenario, res *scenario.Result) {
	unit := "ticks"
	if sc.Engine == scenario.EngineTCP {
		unit = "ms"
	}
	for _, sr := range res.Shards {
		if len(sr.Stages) == 0 {
			continue
		}
		fmt.Printf("stage latency, shard %d (%s):\n", sr.Shard, unit)
		for _, d := range sr.Stages {
			fmt.Printf("  %-24s count %5d  p50 %6d  p99 %6d\n", d.Stage, d.Count, d.P50, d.P99)
		}
	}
	if len(res.Stages) > 0 {
		fmt.Printf("stage latency breakdown (%s):\n", unit)
		for _, d := range res.Stages {
			fmt.Printf("  %-24s count %5d  p50 %6d  p99 %6d\n", d.Stage, d.Count, d.P50, d.P99)
		}
	}
	if len(res.Metrics) > 0 {
		fmt.Println("metrics:")
		for _, s := range res.Metrics {
			fmt.Printf("  %-36s %d\n", s.Name, s.Value)
		}
	}
}

// exportTrace writes the collected protocol trace as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func exportTrace(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: wrote %d events to %s (load in Perfetto or chrome://tracing)\n", len(events), path)
	return nil
}
