// Command tetrabft-sim runs TetraBFT scenarios on the deterministic
// discrete-event simulator and prints what happened: decision times (in
// message delays), per-node traffic, and optionally the full protocol
// trace.
//
// Scenarios come from two equivalent sources: the flags below (quick
// one-liners), or a declarative JSON spec via -scenario file.json (the
// full cluster × faults × network × workload matrix; see EXPERIMENTS.md
// for the spec reference and examples/scenarios/ for ready-made specs).
// The flags themselves just assemble a spec, so a flag-driven run and its
// JSON equivalent produce identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tetrabft/internal/scenario"
	"tetrabft/internal/types"
)

func main() {
	var (
		n            = flag.Int("n", 4, "cluster size")
		silent       = flag.Int("silent", 0, "number of silent (crashed) nodes, taken from the lowest IDs")
		multi        = flag.Bool("multi", false, "run multi-shot (pipelined) TetraBFT instead of single-shot")
		shards       = flag.Int("shards", 0, "run the sharded service layer with this many shard clusters plus an anchor cluster (implies -multi)")
		slots        = flag.Int("slots", 10, "finalized slots to target in multi-shot mode")
		txs          = flag.Int("txs", 0, "multi-shot offered load: this many transactions streamed through batched blocks")
		rate         = flag.Int64("rate", 0, "offered-load arrival rate, transactions per 100 ticks (0 = all at t=0)")
		batch        = flag.Int("batch", 0, "per-block transaction batch cap (0 = default 8)")
		window       = flag.Int("window", 0, "pipeline window: slots proposed optimistically ahead of the notarization rule (0 = paper's rule)")
		seed         = flag.Int64("seed", 1, "simulation seed")
		delta        = flag.Int64("delta", 10, "network bound Δ in ticks (timeout = 9Δ)")
		gst          = flag.Int64("gst", 0, "global stabilization time (0 = synchronous from the start)")
		drop         = flag.Float64("drop", 0.9, "pre-GST message loss probability")
		showTrace    = flag.Bool("trace", false, "print the protocol event trace")
		horizon      = flag.Int64("horizon", 100000, "simulation horizon in ticks")
		scenarioPath = flag.String("scenario", "", "run a declarative JSON scenario spec instead of the flags")
	)
	flag.Parse()

	var sc scenario.Scenario
	if *scenarioPath != "" {
		// The spec file is the whole run; silently dropping other
		// explicitly-set flags would mislead.
		var clash []string
		flag.Visit(func(f *flag.Flag) {
			if f.Name != "scenario" {
				clash = append(clash, "-"+f.Name)
			}
		})
		if len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "tetrabft-sim: -scenario cannot be combined with %s (the spec file declares the whole run)\n", strings.Join(clash, " "))
			os.Exit(1)
		}
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
			os.Exit(1)
		}
		sc, err = scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
			os.Exit(1)
		}
	} else {
		sc = fromFlags(*n, *silent, *multi, *shards, *slots, *txs, *rate, *batch, *window, *seed, *delta, *gst, *drop, *showTrace, *horizon)
	}
	if err := run(sc); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
		os.Exit(1)
	}
}

// fromFlags assembles the declarative spec the flag set describes.
func fromFlags(n, silent int, multi bool, shards, slots, txs int, rate int64, batch, window int, seed, delta, gst int64, drop float64, showTrace bool, horizon int64) scenario.Scenario {
	sc := scenario.Scenario{
		Protocol: scenario.TetraBFT,
		Nodes:    n,
		Seed:     seed,
		Delta:    delta,
		Network:  scenario.NetworkSpec{GST: gst, DropBeforeGST: drop},
		Workload: scenario.WorkloadSpec{ValuePattern: "value-of-node-%d"},
		Stop:     scenario.StopSpec{Horizon: horizon},
		Collect:  scenario.CollectSpec{Trace: showTrace},
	}
	if shards > 0 {
		// The sharded service layer: no flat membership, per-shard offered
		// load, horizon-only stop; chains and traces are per-shard and not
		// collectable, so validation rejects -trace here.
		sc.Protocol = scenario.TetraBFTMulti
		sc.Nodes = 0
		sc.Shards = &scenario.ShardsSpec{Count: shards}
		sc.Workload = scenario.WorkloadSpec{
			Slots:   int64(slots),
			TxCount: txs, TxRate: rate, BatchSize: batch, Window: window,
		}
		return sc
	}
	if multi {
		sc.Protocol = scenario.TetraBFTMulti
		sc.Workload = scenario.WorkloadSpec{
			MaxSlot: int64(slots + 3),
			TxCount: txs, TxRate: rate, BatchSize: batch, Window: window,
		}
		sc.Collect.Chain = true
	}
	for i := 0; i < silent; i++ {
		sc.Faults = append(sc.Faults, scenario.FaultSpec{Type: scenario.FaultSilent, Node: types.NodeID(i)})
	}
	return sc
}

func run(sc scenario.Scenario) error {
	res, err := scenario.Run(sc)
	if err != nil {
		// A failed run still returns what it collected; the trace leading
		// up to an agreement violation is exactly what one wants to see.
		if res != nil {
			for _, ev := range res.Trace {
				fmt.Println(ev.String())
			}
		}
		return err
	}
	for _, ev := range res.Trace {
		fmt.Println(ev.String())
	}

	if sc.Engine == scenario.EngineTCP {
		fmt.Printf("run finished after %dms wall clock\n", res.FinishedAt)
	} else {
		fmt.Printf("simulation finished at t=%d (%d events)\n", res.FinishedAt, res.Events)
	}
	if len(res.Shards) > 0 { // sharded service layer
		for _, s := range res.Shards {
			fmt.Printf("shard %d: finalized %d slots, %d txs decided (commit latency p50 %d, p99 %d), %d anchor epochs through slot %d\n",
				s.Shard, s.Finalized, s.DecidedTxs, s.TxLatencyP50, s.TxLatencyP99, s.AnchorEpochs, s.AnchoredSlots)
		}
		fmt.Printf("anchor cluster: %d epochs committed (anchor latency p50 %d, p99 %d)\n",
			res.AnchorEpochs, res.AnchorLatencyP50, res.AnchorLatencyP99)
		if res.DecidedTxs > 0 {
			fmt.Printf("decided transactions: %d aggregate (commit latency p50 %d, p99 %d)\n",
				res.DecidedTxs, res.TxLatencyP50, res.TxLatencyP99)
		}
	} else if len(res.Finalized) > 0 { // multi-shot
		for _, f := range res.Finalized {
			fmt.Printf("node %d finalized %d slots\n", f.Node, f.Slot)
		}
		for _, b := range res.Chain {
			if b.NumTxs() > 0 {
				fmt.Printf("  slot %2d  block %s  (%d txs, %d-byte payload)\n", b.Slot, b.ID(), b.NumTxs(), len(b.Payload))
			} else {
				fmt.Printf("  slot %2d  block %s  (%d-byte payload)\n", b.Slot, b.ID(), len(b.Payload))
			}
		}
		if res.DecidedTxs > 0 {
			fmt.Printf("decided transactions: %d (commit latency p50 %d, p99 %d ticks)\n",
				res.DecidedTxs, res.TxLatencyP50, res.TxLatencyP99)
		}
	} else {
		for _, tr := range res.Traffic {
			if d, ok := res.Decision(tr.Node, 0); ok {
				fmt.Printf("node %d decided %q at t=%d (message delays)\n", tr.Node, d.Value, d.At)
			} else {
				fmt.Printf("node %d did not decide\n", tr.Node)
			}
		}
	}
	for _, tr := range res.Transport {
		fmt.Printf("replica %d links: %d reconnects, %d frames dropped, %d chaos-dropped, %d chaos-duplicated\n",
			tr.Node, tr.Reconnects, tr.DroppedFrames, tr.ChaosDropped, tr.ChaosDuplicated)
	}
	if res.MaxStorageBytes > 0 {
		fmt.Printf("storage: %d bytes max persistent state\n", res.MaxStorageBytes)
	}
	fmt.Printf("traffic: %d total bytes sent, %d messages dropped\n", res.TotalSentBytes, res.Dropped)
	return nil
}
