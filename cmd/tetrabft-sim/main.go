// Command tetrabft-sim runs TetraBFT scenarios on the deterministic
// discrete-event simulator and prints what happened: decision times (in
// message delays), per-node traffic, and optionally the full protocol
// trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"tetrabft/internal/byz"
	"tetrabft/internal/core"
	"tetrabft/internal/multishot"
	"tetrabft/internal/sim"
	"tetrabft/internal/trace"
	"tetrabft/internal/types"
)

func main() {
	var (
		n         = flag.Int("n", 4, "cluster size")
		silent    = flag.Int("silent", 0, "number of silent (crashed) nodes, taken from the lowest IDs")
		multi     = flag.Bool("multi", false, "run multi-shot (pipelined) TetraBFT instead of single-shot")
		slots     = flag.Int("slots", 10, "finalized slots to target in multi-shot mode")
		seed      = flag.Int64("seed", 1, "simulation seed")
		delta     = flag.Int64("delta", 10, "network bound Δ in ticks (timeout = 9Δ)")
		gst       = flag.Int64("gst", 0, "global stabilization time (0 = synchronous from the start)")
		drop      = flag.Float64("drop", 0.9, "pre-GST message loss probability")
		showTrace = flag.Bool("trace", false, "print the protocol event trace")
		horizon   = flag.Int64("horizon", 100000, "simulation horizon in ticks")
	)
	flag.Parse()
	if err := run(*n, *silent, *multi, *slots, *seed, *delta, *gst, *drop, *showTrace, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sim:", err)
		os.Exit(1)
	}
}

func run(n, silent int, multi bool, slots int, seed, delta, gst int64, drop float64, showTrace bool, horizon int64) error {
	if silent >= n {
		return fmt.Errorf("all %d nodes silent", n)
	}
	log := &trace.Log{}
	var tracer trace.Tracer
	if showTrace {
		tracer = trace.Multi(log, trace.Writer{W: os.Stdout})
	} else {
		tracer = log
	}
	r := sim.New(sim.Config{
		Seed:          seed,
		GST:           types.Time(gst),
		DropBeforeGST: drop,
	})
	var chains []*multishot.Node
	for i := 0; i < n; i++ {
		if i < silent {
			r.Add(byz.Silent{NodeID: types.NodeID(i)})
			continue
		}
		if multi {
			node, err := multishot.NewNode(multishot.Config{
				ID: types.NodeID(i), Nodes: n, Delta: types.Duration(delta),
				MaxSlot: types.Slot(slots + 3), Tracer: tracer,
			})
			if err != nil {
				return err
			}
			chains = append(chains, node)
			r.Add(node)
			continue
		}
		node, err := core.NewNode(core.Config{
			ID: types.NodeID(i), Nodes: n, Delta: types.Duration(delta),
			InitialValue: types.Value(fmt.Sprintf("value-of-node-%d", i)),
			Tracer:       tracer,
		})
		if err != nil {
			return err
		}
		r.Add(node)
	}

	if err := r.Run(types.Time(horizon), nil); err != nil {
		return err
	}
	if err := r.AgreementViolation(); err != nil {
		return fmt.Errorf("AGREEMENT VIOLATION: %w", err)
	}

	fmt.Printf("simulation finished at t=%d (%d events)\n", r.Now(), r.Events())
	if multi {
		for _, node := range chains {
			fmt.Printf("node %d finalized %d slots\n", node.ID(), node.FinalizedSlot())
		}
		if len(chains) > 0 {
			for _, b := range chains[0].FinalizedChain() {
				fmt.Printf("  slot %2d  block %s  (%d-byte payload)\n", b.Slot, b.ID(), len(b.Payload))
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if d, ok := r.Decision(types.NodeID(i), 0); ok {
				fmt.Printf("node %d decided %q at t=%d (message delays)\n", i, d.Val, d.At)
			} else {
				fmt.Printf("node %d did not decide\n", i)
			}
		}
	}
	fmt.Printf("traffic: %d total bytes sent, %d messages dropped\n", r.TotalSentBytes(), r.DroppedMessages())
	return nil
}
