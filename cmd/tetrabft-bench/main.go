// Command tetrabft-bench regenerates the paper's tables and figures on the
// deterministic simulator and prints paper-style rows next to the paper's
// published values. See EXPERIMENTS.md for the recorded comparison.
//
// With -json FILE the command additionally writes a machine-readable perf
// snapshot (schema "tetrabft-bench/v1"): every experiment's rows plus its
// wall-clock duration and the host shape. Snapshots are the BENCH_*.json
// artifacts the ROADMAP's perf methodology compares across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tetrabft/internal/bench"
	"tetrabft/internal/obs"
	"tetrabft/internal/types"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "reproduce Table 1 latency columns (E1)")
		comm       = flag.Bool("comm", false, "reproduce the communication column (E2)")
		storage    = flag.Bool("storage", false, "reproduce the storage column (E3)")
		resp       = flag.Bool("resp", false, "reproduce the responsiveness comparison (E4)")
		fig2       = flag.Bool("fig2", false, "reproduce Figure 2: pipelining (E5)")
		fig3       = flag.Bool("fig3", false, "reproduce Figure 3: multi-shot view change (E6)")
		verify     = flag.Bool("verify", false, "reproduce Section 5: formal verification (E7)")
		timeout    = flag.Bool("timeout", false, "reproduce the 9Δ timeout analysis (E8)")
		ablation   = flag.Bool("ablation", false, "timeout-factor ablation around the 9Δ choice")
		throughput = flag.Bool("throughput", false, "batched-pipeline throughput across batch caps (E10)")
		stages     = flag.Bool("stages", false, "stage-level latency decomposition of the pipelined good case and a crashed leader (E11)")
		all        = flag.Bool("all", false, "run every experiment")
		n          = flag.Int("n", 4, "cluster size for Table 1")
		effort     = flag.Int("effort", 1, "verification effort multiplier")
		jsonPath   = flag.String("json", "", "write a BENCH_*.json-compatible perf snapshot to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	opts := options{
		table1: *table1, comm: *comm, storage: *storage, resp: *resp,
		fig2: *fig2, fig3: *fig3, verify: *verify, timeout: *timeout,
		ablation: *ablation, throughput: *throughput, stages: *stages,
		all: *all, n: *n, effort: *effort, jsonPath: *jsonPath,
	}
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-bench:", err)
		os.Exit(1)
	}
	runErr := run(opts)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-bench:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-bench:", runErr)
		os.Exit(1)
	}
}

type options struct {
	table1, comm, storage, resp, fig2, fig3, verify, timeout, ablation, throughput, stages, all bool

	n, effort int
	jsonPath  string
}

// snapshot is the perf record serialized by -json.
type snapshot struct {
	Schema      string             `json:"schema"`
	GeneratedAt string             `json:"generated_at"`
	Host        hostInfo           `json:"host"`
	Params      map[string]int     `json:"params"`
	TimingsMS   map[string]float64 `json:"timings_ms"`
	Results     map[string]any     `json:"results"`
}

type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func newSnapshot(opts options) *snapshot {
	return &snapshot{
		Schema:      "tetrabft-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Params:    map[string]int{"n": opts.n, "effort": opts.effort},
		TimingsMS: make(map[string]float64),
		Results:   make(map[string]any),
	}
}

// record times one experiment, stores its rows under name, and returns the
// experiment's error unchanged.
func (s *snapshot) record(name string, fn func() (any, error)) (any, error) {
	start := time.Now()
	rows, err := fn()
	if err != nil {
		return nil, err
	}
	if s != nil {
		s.TimingsMS[name] = float64(time.Since(start).Microseconds()) / 1000
		s.Results[name] = rows
	}
	return rows, nil
}

func (s *snapshot) write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(opts options) error {
	anySelected := opts.table1 || opts.comm || opts.storage || opts.resp || opts.fig2 ||
		opts.fig3 || opts.verify || opts.timeout || opts.ablation || opts.throughput || opts.stages
	if !anySelected {
		opts.all = true
	}
	if opts.all {
		opts.table1, opts.comm, opts.storage, opts.resp = true, true, true, true
		opts.fig2, opts.fig3, opts.verify, opts.timeout, opts.ablation = true, true, true, true, true
		opts.throughput, opts.stages = true, true
	}
	var snap *snapshot
	if opts.jsonPath != "" {
		snap = newSnapshot(opts)
	}
	if opts.table1 {
		fmt.Printf("── E1: Table 1 latency columns (n=%d, unit delay) ──\n", opts.n)
		res, err := snap.record("table1", func() (any, error) { return bench.Table1(opts.n) })
		if err != nil {
			return err
		}
		bench.WriteTable1(os.Stdout, res.([]bench.Table1Row))
		fmt.Println()
	}
	if opts.comm {
		fmt.Println("── E2: communicated bytes per instance (Table 1 communication column) ──")
		res, err := snap.record("comm", func() (any, error) {
			return bench.CommunicationSweep([]int{4, 7, 10, 13, 16})
		})
		if err != nil {
			return err
		}
		bench.WriteComm(os.Stdout, res.([]bench.CommRow))
		fmt.Println("shape: TetraBFT/IT-HS total ≈ O(n²); PBFT view change ≈ O(n³)")
		fmt.Println()
	}
	if opts.storage {
		fmt.Println("── E3: persistent storage after 6 failed views (Table 1 storage column) ──")
		res, err := snap.record("storage", func() (any, error) { return bench.StorageSweep(6) })
		if err != nil {
			return err
		}
		for _, row := range res.([]bench.StorageRow) {
			fmt.Printf("%-18s %6d bytes\n", row.Protocol, row.Bytes)
		}
		fmt.Println("shape: constant for TetraBFT/IT-HS/bounded PBFT; growing for unbounded PBFT")
		fmt.Println()
	}
	if opts.resp {
		fmt.Println("── E4: post-timeout recovery vs Δ (responsiveness column; δ = 1) ──")
		res, err := snap.record("resp", func() (any, error) {
			return bench.Responsiveness([]types.Duration{10, 20, 50})
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %6s %18s\n", "Protocol", "Δ", "Recovery (ticks)")
		for _, row := range res.([]bench.RespRow) {
			fmt.Printf("%-18s %6d %18d\n", row.Protocol, row.Delta, row.Recovery)
		}
		fmt.Println("shape: responsive protocols are flat in Δ; the blog IT-HS pays Δ")
		fmt.Println()
	}
	if opts.fig2 {
		fmt.Println("── E5: Figure 2 — pipelined good case ──")
		r, err := snap.record("fig2", func() (any, error) { return bench.Fig2Pipeline(20) })
		if err != nil {
			return err
		}
		res := r.(bench.Fig2Result)
		fmt.Printf("slots finalized:        %d (first at t=%d, last at t=%d)\n", res.Slots, res.FirstFinalizeAt, res.LastFinalizeAt)
		fmt.Printf("delays per block:       %.2f (paper: 1)\n", res.MeanInterval)
		fmt.Printf("single-shot latency:    %d delays (paper: 5)\n", res.SingleShotLatency)
		fmt.Printf("throughput speedup:     %.2f× (paper: 5×)\n", res.ThroughputSpeedup)
		fmt.Println()
	}
	if opts.fig3 {
		fmt.Println("── E6/E9: Figure 3 — multi-shot view change ──")
		r, err := snap.record("fig3", func() (any, error) { return bench.Fig3ViewChange() })
		if err != nil {
			return err
		}
		res := r.(bench.Fig3Result)
		fmt.Printf("aborted in-flight slots:  %d (paper bound: 5)\n", res.AbortedSlots)
		fmt.Printf("view-change broadcast at: t=%d\n", res.ViewChangeAt)
		fmt.Printf("new-view notarization at: t=%d (recovery %d ticks ≤ 5Δ = %d)\n",
			res.RecoveryNotarizeAt, res.RecoveryDelta, res.DeltaBound)
		fmt.Printf("slots finalized overall:  %d\n", res.FinalizedSlots)
		fmt.Println()
	}
	if opts.verify {
		fmt.Println("── E7: Section 5 — formal verification reproduction ──")
		r, err := snap.record("verify", func() (any, error) { return bench.Verification(opts.effort) })
		if err != nil {
			return err
		}
		res := r.(bench.VerificationResult)
		fmt.Printf("bounded BFS states:        %d (truncated: %v)\n", res.BFSStates, res.BFSTruncated)
		fmt.Printf("guided-walk states:        %d (paper config: 4 nodes, 1 Byz, 3 values, 5 views)\n", res.WalkStates)
		fmt.Printf("induction samples/steps:   %d / %d\n", res.InductionSamples, res.InductionSteps)
		fmt.Printf("liveness fixpoint runs:    %d\n", res.LivenessRuns)
		fmt.Printf("violations:                %d (expected: 0)\n", res.Violations)
		fmt.Println()
	}
	if opts.timeout {
		fmt.Println("── E8: Section 3.2 — 9Δ timeout analysis ──")
		r, err := snap.record("timeout", func() (any, error) { return bench.TimeoutBound(10, 10) })
		if err != nil {
			return err
		}
		res := r.(bench.TimeoutBoundResult)
		fmt.Printf("seeds: %d, Δ = %d, lossy asynchrony until GST\n", res.Seeds, res.Delta)
		fmt.Printf("worst post-GST recovery:  %d ticks\n", res.WorstRecovery)
		fmt.Printf("analysis bound:           %d ticks (9Δ stale timer + 2Δ sync + 7δ view)\n", res.PaperBound)
		fmt.Printf("all decided: %v, all agreed: %v\n", res.AllDecided, res.AllAgreed)
		fmt.Println()
	}
	if opts.ablation {
		fmt.Println("── Ablation: view-timeout factor around the paper's 9Δ ──")
		r, err := snap.record("ablation", func() (any, error) {
			return bench.AblationTimeout([]int{2, 5, 9, 18})
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-28s %-22s\n", "factor", "good case (variance delays)", "crashed-leader case")
		for _, row := range r.([]bench.AblationRow) {
			good := "LIVELOCK (views churn, safety holds)"
			if row.GoodDecided {
				good = fmt.Sprintf("decided t=%d (max view %d)", row.GoodDecideAt, row.GoodMaxView)
			}
			crash := "no decision"
			if row.SilentDecided {
				crash = fmt.Sprintf("decided t=%d", row.SilentDecideAt)
			}
			fmt.Printf("%-8d %-28s %-22s\n", row.Factor, good, crash)
		}
		fmt.Println("shape: below 8Δ liveness dies; 9Δ is safe; larger only delays crash recovery")
		fmt.Println()
	}
	if opts.throughput {
		fmt.Println("── E10: batched-pipeline throughput (30 slots, saturating offered load) ──")
		r, err := snap.record("throughput", func() (any, error) {
			return bench.Throughput([]int{1, 4, 16, 64})
		})
		if err != nil {
			return err
		}
		bench.WriteThroughput(os.Stdout, r.([]bench.ThroughputRow))
		fmt.Println("shape: tx/tick scales with the batch cap; consensus ticks stay flat")
		fmt.Println()
	}
	if opts.stages {
		fmt.Println("── E11: stage-level latency decomposition (pipelined multishot) ──")
		r, err := snap.record("stages", func() (any, error) { return bench.StageDecomposition() })
		if err != nil {
			return err
		}
		bench.WriteStages(os.Stdout, r.(bench.StagesResult))
		fmt.Println("shape: good-case finalize ≈ 3δ behind the propose; the crash adds view-change dwell")
		fmt.Println()
	}
	if snap != nil {
		if err := snap.write(opts.jsonPath); err != nil {
			return fmt.Errorf("writing perf snapshot: %w", err)
		}
		fmt.Printf("perf snapshot written to %s\n", opts.jsonPath)
	}
	return nil
}
