// Command tetrabft-bench regenerates the paper's tables and figures on the
// deterministic simulator and prints paper-style rows next to the paper's
// published values. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"tetrabft/internal/bench"
	"tetrabft/internal/types"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "reproduce Table 1 latency columns (E1)")
		comm     = flag.Bool("comm", false, "reproduce the communication column (E2)")
		storage  = flag.Bool("storage", false, "reproduce the storage column (E3)")
		resp     = flag.Bool("resp", false, "reproduce the responsiveness comparison (E4)")
		fig2     = flag.Bool("fig2", false, "reproduce Figure 2: pipelining (E5)")
		fig3     = flag.Bool("fig3", false, "reproduce Figure 3: multi-shot view change (E6)")
		verify   = flag.Bool("verify", false, "reproduce Section 5: formal verification (E7)")
		timeout  = flag.Bool("timeout", false, "reproduce the 9Δ timeout analysis (E8)")
		ablation = flag.Bool("ablation", false, "timeout-factor ablation around the 9Δ choice")
		all      = flag.Bool("all", false, "run every experiment")
		n        = flag.Int("n", 4, "cluster size for Table 1")
		effort   = flag.Int("effort", 1, "verification effort multiplier")
	)
	flag.Parse()
	if err := run(*table1, *comm, *storage, *resp, *fig2, *fig3, *verify, *timeout, *ablation, *all, *n, *effort); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-bench:", err)
		os.Exit(1)
	}
}

func run(table1, comm, storage, resp, fig2, fig3, verify, timeout, ablation, all bool, n, effort int) error {
	any := table1 || comm || storage || resp || fig2 || fig3 || verify || timeout || ablation
	if !any {
		all = true
	}
	if all {
		table1, comm, storage, resp, fig2, fig3, verify, timeout, ablation = true, true, true, true, true, true, true, true, true
	}
	if table1 {
		fmt.Printf("── E1: Table 1 latency columns (n=%d, unit delay) ──\n", n)
		rows, err := bench.Table1(n)
		if err != nil {
			return err
		}
		bench.WriteTable1(os.Stdout, rows)
		fmt.Println()
	}
	if comm {
		fmt.Println("── E2: communicated bytes per instance (Table 1 communication column) ──")
		rows, err := bench.CommunicationSweep([]int{4, 7, 10, 13, 16})
		if err != nil {
			return err
		}
		bench.WriteComm(os.Stdout, rows)
		fmt.Println("shape: TetraBFT/IT-HS total ≈ O(n²); PBFT view change ≈ O(n³)")
		fmt.Println()
	}
	if storage {
		fmt.Println("── E3: persistent storage after 6 failed views (Table 1 storage column) ──")
		rows, err := bench.StorageSweep(6)
		if err != nil {
			return err
		}
		for _, row := range rows {
			fmt.Printf("%-18s %6d bytes\n", row.Protocol, row.Bytes)
		}
		fmt.Println("shape: constant for TetraBFT/IT-HS/bounded PBFT; growing for unbounded PBFT")
		fmt.Println()
	}
	if resp {
		fmt.Println("── E4: post-timeout recovery vs Δ (responsiveness column; δ = 1) ──")
		rows, err := bench.Responsiveness([]types.Duration{10, 20, 50})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %6s %18s\n", "Protocol", "Δ", "Recovery (ticks)")
		for _, row := range rows {
			fmt.Printf("%-18s %6d %18d\n", row.Protocol, row.Delta, row.Recovery)
		}
		fmt.Println("shape: responsive protocols are flat in Δ; the blog IT-HS pays Δ")
		fmt.Println()
	}
	if fig2 {
		fmt.Println("── E5: Figure 2 — pipelined good case ──")
		res, err := bench.Fig2Pipeline(20)
		if err != nil {
			return err
		}
		fmt.Printf("slots finalized:        %d (first at t=%d, last at t=%d)\n", res.Slots, res.FirstFinalizeAt, res.LastFinalizeAt)
		fmt.Printf("delays per block:       %.2f (paper: 1)\n", res.MeanInterval)
		fmt.Printf("single-shot latency:    %d delays (paper: 5)\n", res.SingleShotLatency)
		fmt.Printf("throughput speedup:     %.2f× (paper: 5×)\n", res.ThroughputSpeedup)
		fmt.Println()
	}
	if fig3 {
		fmt.Println("── E6/E9: Figure 3 — multi-shot view change ──")
		res, err := bench.Fig3ViewChange()
		if err != nil {
			return err
		}
		fmt.Printf("aborted in-flight slots:  %d (paper bound: 5)\n", res.AbortedSlots)
		fmt.Printf("view-change broadcast at: t=%d\n", res.ViewChangeAt)
		fmt.Printf("new-view notarization at: t=%d (recovery %d ticks ≤ 5Δ = %d)\n",
			res.RecoveryNotarizeAt, res.RecoveryDelta, res.DeltaBound)
		fmt.Printf("slots finalized overall:  %d\n", res.FinalizedSlots)
		fmt.Println()
	}
	if verify {
		fmt.Println("── E7: Section 5 — formal verification reproduction ──")
		res, err := bench.Verification(effort)
		if err != nil {
			return err
		}
		fmt.Printf("bounded BFS states:        %d (truncated: %v)\n", res.BFSStates, res.BFSTruncated)
		fmt.Printf("guided-walk states:        %d (paper config: 4 nodes, 1 Byz, 3 values, 5 views)\n", res.WalkStates)
		fmt.Printf("induction samples/steps:   %d / %d\n", res.InductionSamples, res.InductionSteps)
		fmt.Printf("liveness fixpoint runs:    %d\n", res.LivenessRuns)
		fmt.Printf("violations:                %d (expected: 0)\n", res.Violations)
		fmt.Println()
	}
	if timeout {
		fmt.Println("── E8: Section 3.2 — 9Δ timeout analysis ──")
		res, err := bench.TimeoutBound(10, 10)
		if err != nil {
			return err
		}
		fmt.Printf("seeds: %d, Δ = %d, lossy asynchrony until GST\n", res.Seeds, res.Delta)
		fmt.Printf("worst post-GST recovery:  %d ticks\n", res.WorstRecovery)
		fmt.Printf("analysis bound:           %d ticks (9Δ stale timer + 2Δ sync + 7δ view)\n", res.PaperBound)
		fmt.Printf("all decided: %v, all agreed: %v\n", res.AllDecided, res.AllAgreed)
		fmt.Println()
	}
	if ablation {
		fmt.Println("── Ablation: view-timeout factor around the paper's 9Δ ──")
		rows, err := bench.AblationTimeout([]int{2, 5, 9, 18})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-28s %-22s\n", "factor", "good case (variance delays)", "crashed-leader case")
		for _, row := range rows {
			good := "LIVELOCK (views churn, safety holds)"
			if row.GoodDecided {
				good = fmt.Sprintf("decided t=%d (max view %d)", row.GoodDecideAt, row.GoodMaxView)
			}
			crash := "no decision"
			if row.SilentDecided {
				crash = fmt.Sprintf("decided t=%d", row.SilentDecideAt)
			}
			fmt.Printf("%-8d %-28s %-22s\n", row.Factor, good, crash)
		}
		fmt.Println("shape: below 8Δ liveness dies; 9Δ is safe; larger only delays crash recovery")
		fmt.Println()
	}
	return nil
}
