// Command tetrabft-sweep runs declarative experiment grids and fuzzing
// campaigns on the sweep engine.
//
// Modes (exactly one):
//
//	-run FILE        run a JSON sweep spec (see internal/sweep and the
//	                 EXPERIMENTS.md "Sweeps & fuzzing" section)
//	-name NAME       run a bundled named sweep (-list shows them)
//	-capacity P      run a capacity plan: bracket and bisect to the highest
//	                 offered rate the SLOs sustain. P is a bundled plan name
//	                 (-list shows them) or a JSON plan file; the snapshot is
//	                 tetrabft-capacity/v1 and a plan that finds no knee (or
//	                 misses its target_rate) exits 1
//	-fuzz N          sample and run N random scenarios; any failure is
//	                 shrunk to a minimal reproducing Scenario JSON
//	-compare A B     diff two tetrabft-sweep/v1 snapshots
//	-list            list the bundled named sweeps and capacity plans
//
// Reports go to stdout (-format md|csv|json, default md) and are
// byte-identical across runs and GOMAXPROCS values; -json FILE additionally
// writes the tetrabft-sweep/v1 snapshot, the artifact the ROADMAP's
// regression methodology compares across commits (-compare exits 0 when two
// snapshots carry identical measurements, 1 otherwise). A failing sweep
// verdict or any fuzzing finding also exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tetrabft/internal/obs"
	"tetrabft/internal/scenario"
	"tetrabft/internal/sweep"
)

func main() {
	var (
		runPath    = flag.String("run", "", "run the JSON sweep spec at this path")
		name       = flag.String("name", "", "run the bundled named sweep")
		capacity   = flag.String("capacity", "", "run a capacity plan (bundled name or JSON file)")
		fuzzRuns   = flag.Int("fuzz", 0, "sample and run this many random scenarios")
		compare    = flag.Bool("compare", false, "diff the two snapshot files given as arguments")
		list       = flag.Bool("list", false, "list the bundled named sweeps")
		format     = flag.String("format", "md", "stdout report format: md, csv or json")
		jsonPath   = flag.String("json", "", "also write the tetrabft-sweep/v1 (or fuzz) snapshot to this path")
		fuzzSeed   = flag.Int64("fuzz-seed", 1, "fuzzing campaign seed")
		maxNodes   = flag.Int("fuzz-max-nodes", 0, "largest sampled cluster (default 7)")
		protocols  = flag.String("fuzz-protocols", "", "comma-separated protocol pool (default: fault-tolerant set)")
		mutations  = flag.String("fuzz-mutations", "", "comma-separated broken variants to fuzz against (e.g. skip-rule-3)")
		outDir     = flag.String("out", "", "directory for shrunken failing scenario specs (default: alongside -json, else .)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sweep:", err)
		os.Exit(1)
	}
	code, err := run(options{
		runPath: *runPath, name: *name, capacity: *capacity, fuzzRuns: *fuzzRuns, compare: *compare,
		list: *list, format: *format, jsonPath: *jsonPath, fuzzSeed: *fuzzSeed,
		maxNodes: *maxNodes, protocols: *protocols, mutations: *mutations,
		outDir: *outDir, args: flag.Args(),
	}, os.Stdout)
	// The profile stop must land before os.Exit or the CPU profile is
	// truncated and the heap profile never written.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sweep:", perr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-sweep:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type options struct {
	runPath, name    string
	capacity         string
	fuzzRuns         int
	compare, list    bool
	format, jsonPath string
	fuzzSeed         int64
	maxNodes         int
	protocols        string
	mutations        string
	outDir           string
	args             []string
}

// run executes one mode and returns the process exit code (0 pass, 1 fail).
func run(opts options, stdout io.Writer) (int, error) {
	modes := 0
	for _, on := range []bool{opts.runPath != "", opts.name != "", opts.capacity != "", opts.fuzzRuns > 0, opts.compare, opts.list} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return 1, fmt.Errorf("pick exactly one mode: -run FILE, -name NAME, -capacity PLAN, -fuzz N, -compare A B or -list")
	}
	switch opts.format {
	case "md", "csv", "json":
	default:
		return 1, fmt.Errorf("unknown -format %q (accepted: md, csv, json)", opts.format)
	}

	switch {
	case opts.list:
		for _, sw := range sweep.Named() {
			fmt.Fprintf(stdout, "%-25s sweep     %d axes, %d asserts\n", sw.Name, len(sw.Axes), len(sw.Assert))
		}
		for _, cp := range sweep.NamedCapacity() {
			fmt.Fprintf(stdout, "%-25s capacity  bracket [%d, %d], %d asserts\n", cp.Name, cp.MinRate, cp.MaxRate, len(cp.Assert))
		}
		return 0, nil

	case opts.compare:
		return runCompare(opts, stdout)

	case opts.fuzzRuns > 0:
		return runFuzz(opts, stdout)

	case opts.capacity != "":
		return runCapacity(opts, stdout)
	}

	var sw sweep.Sweep
	if opts.runPath != "" {
		data, err := os.ReadFile(opts.runPath)
		if err != nil {
			return 1, err
		}
		sw, err = sweep.Parse(data)
		if err != nil {
			return 1, err
		}
	} else {
		var ok bool
		sw, ok = sweep.ByName(opts.name)
		if !ok {
			return 1, fmt.Errorf("unknown named sweep %q (-list shows the library)", opts.name)
		}
	}
	res, err := sweep.Run(sw)
	if err != nil {
		return 1, err
	}
	switch opts.format {
	case "csv":
		sweep.WriteCSV(stdout, res)
	case "json":
		data, err := res.MarshalIndent()
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	default: // "md", validated above
		sweep.WriteMarkdown(stdout, res)
	}
	if opts.jsonPath != "" {
		data, err := res.MarshalIndent()
		if err != nil {
			return 1, err
		}
		if err := os.WriteFile(opts.jsonPath, append(data, '\n'), 0o644); err != nil {
			return 1, err
		}
	}
	if !res.Pass {
		return 1, nil
	}
	return 0, nil
}

// runCapacity resolves the plan (bundled name first, then a JSON file),
// runs the knee search and reports it.
func runCapacity(opts options, stdout io.Writer) (int, error) {
	cp, ok := sweep.CapacityByName(opts.capacity)
	if !ok {
		data, err := os.ReadFile(opts.capacity)
		if err != nil {
			return 1, fmt.Errorf("-capacity %q is neither a bundled plan (-list shows them) nor a readable file: %w", opts.capacity, err)
		}
		if cp, err = sweep.ParseCapacity(data); err != nil {
			return 1, err
		}
	}
	res, err := sweep.RunCapacity(cp)
	if err != nil {
		return 1, err
	}
	switch opts.format {
	case "csv":
		return 1, fmt.Errorf("-format csv is not supported for -capacity (use md or json)")
	case "json":
		data, err := res.MarshalIndent()
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	default: // "md", validated above
		sweep.WriteCapacityMarkdown(stdout, res)
	}
	if opts.jsonPath != "" {
		data, err := res.MarshalIndent()
		if err != nil {
			return 1, err
		}
		if err := os.WriteFile(opts.jsonPath, append(data, '\n'), 0o644); err != nil {
			return 1, err
		}
	}
	if !res.Pass {
		return 1, nil
	}
	return 0, nil
}

func runCompare(opts options, stdout io.Writer) (int, error) {
	if len(opts.args) != 2 {
		return 1, fmt.Errorf("-compare wants exactly two snapshot files")
	}
	results := make([]*sweep.Result, 2)
	for i, path := range opts.args {
		data, err := os.ReadFile(path)
		if err != nil {
			return 1, err
		}
		if results[i], err = sweep.ParseResult(data); err != nil {
			return 1, fmt.Errorf("%s: %w", path, err)
		}
	}
	diffs := sweep.Diff(results[0], results[1])
	if len(diffs) == 0 {
		fmt.Fprintln(stdout, "snapshots carry identical measurements")
		return 0, nil
	}
	for _, d := range diffs {
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintf(stdout, "%d difference(s)\n", len(diffs))
	return 1, nil
}

func runFuzz(opts options, stdout io.Writer) (int, error) {
	cfg := sweep.FuzzConfig{
		Seed:     opts.fuzzSeed,
		Runs:     opts.fuzzRuns,
		MaxNodes: opts.maxNodes,
	}
	for _, p := range splitList(opts.protocols) {
		cfg.Protocols = append(cfg.Protocols, scenario.Protocol(p))
	}
	for _, m := range splitList(opts.mutations) {
		cfg.Mutations = append(cfg.Mutations, scenario.Mutation(m))
	}
	if opts.format == "csv" {
		return 1, fmt.Errorf("-format csv is not supported for -fuzz (use md or json)")
	}
	rep, err := sweep.Fuzz(cfg)
	if err != nil {
		return 1, err
	}
	if opts.jsonPath != "" {
		data, err := marshalIndent(rep)
		if err != nil {
			return 1, err
		}
		if err := os.WriteFile(opts.jsonPath, append(data, '\n'), 0o644); err != nil {
			return 1, err
		}
	}
	dir := opts.outDir
	if dir == "" {
		if opts.jsonPath != "" {
			dir = filepath.Dir(opts.jsonPath)
		} else {
			dir = "."
		}
	}
	// Stale reproducers from an earlier campaign in the same directory
	// would read as current findings; clear them before writing.
	old, err := filepath.Glob(filepath.Join(dir, "fuzz-fail-*.json"))
	if err != nil {
		return 1, err
	}
	for _, path := range old {
		if err := os.Remove(path); err != nil {
			return 1, err
		}
	}
	if opts.format == "json" {
		data, err := marshalIndent(rep)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		fmt.Fprintf(stdout, "fuzz: %d scenarios, seed %d: %d failure(s)\n", rep.Runs, rep.Seed, len(rep.Failures))
	}
	if len(rep.Failures) == 0 {
		return 0, nil
	}
	for i, f := range rep.Failures {
		data, err := f.Scenario.MarshalIndent()
		if err != nil {
			return 1, err
		}
		path := filepath.Join(dir, fmt.Sprintf("fuzz-fail-%d.json", i))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return 1, err
		}
		if opts.format != "json" { // the JSON report already carries the findings
			fmt.Fprintf(stdout, "  #%d %s (%d shrink steps): %s\n", i, f.Kind, f.ShrinkSteps, f.Detail)
			fmt.Fprintf(stdout, "     minimal reproducer written to %s (run it with tetrabft-sim -scenario)\n", path)
		}
	}
	return 1, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func marshalIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
