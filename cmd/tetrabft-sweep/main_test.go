package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tetrabft/internal/scenario"
	"tetrabft/internal/sweep"
)

// small returns options for a tiny inline sweep spec written to dir.
func smallSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := `{
  "name": "cli-small",
  "base": {"protocol": "tetrabft", "nodes": 4, "stop": {"horizon": 4000, "all_decided": true}},
  "axes": [{"field": "delta", "ints": [10, 20]}],
  "assert": ["max_latency <= 5"]
}`
	path := filepath.Join(dir, "small.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSpecPassVerdict runs a spec file end to end: exit 0, markdown
// report, snapshot written.
func TestRunSpecPassVerdict(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	var out strings.Builder
	code, err := run(options{runPath: smallSpec(t, dir), format: "md", jsonPath: snap}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{"## sweep: cli-small", "verdict: PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sweep.ParseResult(data); err != nil || res.Schema != sweep.Schema {
		t.Errorf("snapshot does not parse as %s: %v", sweep.Schema, err)
	}
}

// TestFailedAssertExitsNonZero pins the verdict exit code: a violated SLO
// is exit 1 without an error (the report is the diagnosis).
func TestFailedAssertExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "fail.json")
	if err := os.WriteFile(spec, []byte(`{
  "base": {"protocol": "tetrabft", "nodes": 4, "stop": {"horizon": 4000}},
  "assert": ["max_latency <= 4"]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(options{runPath: spec, format: "md"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d, want 1 for a failing verdict", code)
	}
	if !strings.Contains(out.String(), "verdict: FAIL") {
		t.Errorf("report lacks the FAIL verdict:\n%s", out.String())
	}
}

// TestBadSpecRejected: a malformed spec is an error, exit 1.
func TestBadSpecRejected(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(spec, []byte(`{"base": {"nodes": 4}, "axis": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code, err := run(options{runPath: spec, format: "md"}, &out); err == nil || code != 1 {
		t.Errorf("bad spec: code=%d err=%v", code, err)
	}
}

// TestModeExclusivity: zero or two modes are usage errors.
func TestModeExclusivity(t *testing.T) {
	var out strings.Builder
	if _, err := run(options{format: "md"}, &out); err == nil {
		t.Error("no mode accepted")
	}
	if _, err := run(options{name: "n-scaling", fuzzRuns: 5, format: "md"}, &out); err == nil {
		t.Error("two modes accepted")
	}
	if _, err := run(options{name: "no-such-sweep", format: "md"}, &out); err == nil {
		t.Error("unknown named sweep accepted")
	}
	if _, err := run(options{name: "n-scaling", format: "yaml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestCompareExitCodes pins the snapshot-regression contract: identical
// snapshots exit 0; a perturbed measurement exits 1 and is named.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec(t, dir)
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	for _, snap := range []string{a, b} {
		var out strings.Builder
		if code, err := run(options{runPath: spec, format: "json", jsonPath: snap}, &out); err != nil || code != 0 {
			t.Fatalf("run: code=%d err=%v", code, err)
		}
	}
	var out strings.Builder
	code, err := run(options{compare: true, args: []string{a, b}, format: "md"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("identical snapshots: code=%d err=%v\n%s", code, err, out.String())
	}

	// Perturb one measured number in b.
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.ParseResult(data)
	if err != nil {
		t.Fatal(err)
	}
	res.Cells[0].Reps[0].Traffic++
	perturbed, err := res.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, perturbed, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run(options{compare: true, args: []string{a, b}, format: "md"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("perturbed snapshots: code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "cell 0") {
		t.Errorf("diff does not name the perturbed cell:\n%s", out.String())
	}
}

// TestFuzzCleanAndTeeth pins the fuzzing exit codes: a clean campaign exits
// 0; against the broken skip-rule-3 variant it exits 1 and writes a minimal
// reproducer that parses and reproduces the violation.
func TestFuzzCleanAndTeeth(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	code, err := run(options{fuzzRuns: 10, fuzzSeed: 1, format: "md", outDir: dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean campaign: code=%d err=%v\n%s", code, err, out.String())
	}

	out.Reset()
	code, err = run(options{
		fuzzRuns: 25, fuzzSeed: 1, format: "md", outDir: dir,
		protocols: "tetrabft", mutations: "skip-rule-3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("teeth campaign: code = %d, want 1\n%s", code, out.String())
	}
	repro := filepath.Join(dir, "fuzz-fail-0.json")
	data, err := os.ReadFile(repro)
	if err != nil {
		t.Fatalf("no reproducer written: %v", err)
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		t.Fatalf("reproducer does not parse: %v\n%s", err, data)
	}
	if sc.Mutation != scenario.MutationSkipRule3 {
		t.Errorf("reproducer lost the mutation: %+v", sc)
	}

	// A later clean campaign in the same directory must clear the stale
	// reproducers — leftover files would read as current findings.
	out.Reset()
	code, err = run(options{fuzzRuns: 10, fuzzSeed: 1, format: "md", outDir: dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean re-run: code=%d err=%v", code, err)
	}
	if _, err := os.Stat(repro); !os.IsNotExist(err) {
		t.Errorf("stale reproducer %s survived a clean campaign", repro)
	}
}

// smallCapacity writes a fast capacity plan to dir and returns its path.
func smallCapacity(t *testing.T, dir string) string {
	t.Helper()
	spec := `{
  "name": "cli-capacity",
  "base": {
    "protocol": "tetrabft-multi",
    "nodes": 4,
    "workload": {"slots": 400, "batch_size": 8, "window": 2,
                 "arrival": {"process": "poisson", "rate": 1}},
    "stop": {"horizon": 800}
  },
  "min_rate": 10,
  "max_rate": 4000,
  "load_ticks": 200,
  "assert": ["max_backlog <= 0", "max_tx_p99 <= 150"]
}`
	path := filepath.Join(dir, "capacity.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCapacityModeFile runs a capacity plan file end to end: exit 0, probe
// table, tetrabft-capacity/v1 snapshot written.
func TestCapacityModeFile(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "cap.json")
	var out strings.Builder
	code, err := run(options{capacity: smallCapacity(t, dir), format: "md", jsonPath: snap}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{"## capacity: cli-capacity", "knee:", "verdict: PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.ParseCapacityResult(data)
	if err != nil || res.Schema != sweep.CapacitySchema {
		t.Fatalf("snapshot does not parse as %s: %v", sweep.CapacitySchema, err)
	}
	if res.KneeRate == 0 || !res.Saturated {
		t.Errorf("snapshot knee=%d saturated=%v, want a saturated knee", res.KneeRate, res.Saturated)
	}
}

// TestCapacityModeVerdicts pins the capacity exit codes: a missed
// target_rate is exit 1 without an error, an unknown plan is an error, and
// csv is rejected up front.
func TestCapacityModeVerdicts(t *testing.T) {
	dir := t.TempDir()
	path := smallCapacity(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sweep.ParseCapacity(data)
	if err != nil {
		t.Fatal(err)
	}
	cp.TargetRate = cp.MaxRate * 10
	strict, err := cp.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	miss := filepath.Join(dir, "miss.json")
	if err := os.WriteFile(miss, strict, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(options{capacity: miss, format: "md"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "verdict: FAIL") {
		t.Errorf("missed target: code=%d, want 1 with a FAIL verdict:\n%s", code, out.String())
	}

	if code, err := run(options{capacity: "no-such-plan", format: "md"}, &out); err == nil || code != 1 {
		t.Errorf("unknown plan: code=%d err=%v", code, err)
	}
	if _, err := run(options{capacity: path, format: "csv"}, &out); err == nil {
		t.Error("-format csv accepted for -capacity")
	}
}

// TestListIncludesCapacityPlans: -list shows both registries.
func TestListIncludesCapacityPlans(t *testing.T) {
	var out strings.Builder
	code, err := run(options{list: true, format: "md"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, want := range []string{"offered-load-shootout", "tetrabft-multi-capacity"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list lacks %q:\n%s", want, out.String())
		}
	}
}

// TestFuzzFormats pins -format handling in fuzz mode: json emits the
// machine-readable report, csv is rejected up front.
func TestFuzzFormats(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	code, err := run(options{fuzzRuns: 5, fuzzSeed: 1, format: "json", outDir: dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), `"schema": "tetrabft-fuzz/v1"`) {
		t.Errorf("-format json did not emit the fuzz report:\n%s", out.String())
	}
	if _, err := run(options{fuzzRuns: 5, format: "csv", outDir: dir}, &out); err == nil {
		t.Error("-format csv accepted for -fuzz")
	}
	if _, err := run(options{fuzzRuns: 5, format: "yaml", outDir: dir}, &out); err == nil {
		t.Error("unknown format accepted for -fuzz")
	}
}
