package main

import (
	"strings"
	"testing"
)

// tiny runs the given mode on a minimal instance (fast enough for every
// mode to execute for real).
func tiny(mode string, good int) error {
	return run(4, 1, 2, 2, good, mode, 2000, 6, 10, 20, 10, 1)
}

// TestUnknownModeRejected pins the -mode bugfix: an unknown mode must fail
// loudly instead of running zero checks and reporting success.
func TestUnknownModeRejected(t *testing.T) {
	for _, mode := range []string{"bfss", "BFS", "", "walk", "all "} {
		err := tiny(mode, 0)
		if err == nil {
			t.Fatalf("mode %q accepted; it runs zero checks", mode)
		}
		if !strings.Contains(err.Error(), "accepted:") {
			t.Errorf("mode %q error does not list the accepted values: %v", mode, err)
		}
	}
}

// TestKnownModesRun executes each accepted mode on a tiny instance.
func TestKnownModesRun(t *testing.T) {
	for _, mode := range []string{"bfs", "walks", "induction", "liveness", "all"} {
		if err := tiny(mode, 0); err != nil {
			t.Errorf("mode %q failed: %v", mode, err)
		}
	}
	// Liveness with the proposer disabled is skipped, not a failure.
	if err := tiny("liveness", -1); err != nil {
		t.Errorf("liveness without a good round should be skipped cleanly: %v", err)
	}
}

// TestInvalidConfigRejected: spec validation errors still surface.
func TestInvalidConfigRejected(t *testing.T) {
	if err := run(3, 1, 2, 2, 0, "bfs", 100, 4, 1, 1, 1, 1); err == nil {
		t.Error("n=3f accepted")
	}
}

// TestHumanBytes pins the unit breakpoints of the trace-store size report.
func TestHumanBytes(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1 << 10, "1.0 KiB"},
		{8 * 1 << 20, "8.0 MiB"},
		{8634368, "8.2 MiB"},
	}
	for _, tt := range tests {
		if got := humanBytes(tt.n); got != tt.want {
			t.Errorf("humanBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
