// Command tetrabft-check model-checks the abstract TetraBFT specification
// (the TLA+ spec of the paper's Appendix B, re-implemented in Go): bounded
// exhaustive search, randomized walks on the paper's Section 5
// configuration, sampled inductive-invariant checking, and the liveness
// fixpoint theorem.
package main

import (
	"flag"
	"fmt"
	"os"

	"tetrabft/internal/checker"
	"tetrabft/internal/obs"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 4, "number of nodes")
		faulty = flag.Int("faulty", 1, "number of Byzantine nodes")
		values = flag.Int("values", 3, "number of candidate values")
		rounds = flag.Int("rounds", 5, "number of rounds (views)")
		good   = flag.Int("good", 0, "good round (-1 disables the proposer)")
		mode   = flag.String("mode", "all", "bfs | walks | induction | liveness | all")
		// The BFS keeps O(1) trace bytes per state (parent-pointer store),
		// so a million-state default costs single-digit MiB of trace memory
		// where the old per-state trace copies made it prohibitive.
		states  = flag.Int("states", 1000000, "BFS state cap")
		depth   = flag.Int("depth", 14, "BFS depth cap")
		walks   = flag.Int("walks", 200, "random walks")
		steps   = flag.Int("steps", 100, "steps per walk")
		samples = flag.Int("samples", 300, "induction samples")
		seed    = flag.Int64("seed", 1, "randomization seed")
		// Model checking is the repo's heaviest CPU- and heap-bound work;
		// these profiles are how BFS store regressions get diagnosed.
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the check to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-check:", err)
		os.Exit(1)
	}
	runErr := run(*nodes, *faulty, *values, *rounds, *good, *mode, *states, *depth, *walks, *steps, *samples, *seed)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-check:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tetrabft-check:", runErr)
		os.Exit(1)
	}
}

func run(nodes, faulty, values, rounds, good int, mode string, states, depth, walks, steps, samples int, seed int64) error {
	// Validate the mode up front: a typo'd -mode must not fall through to
	// "all checked properties hold" after running zero checks.
	switch mode {
	case "bfs", "walks", "induction", "liveness", "all":
	default:
		return fmt.Errorf("unknown -mode %q (accepted: bfs, walks, induction, liveness, all)", mode)
	}
	cfg := checker.Config{
		Nodes: nodes, Faulty: faulty, Values: values, Rounds: rounds,
		GoodRound: checker.Round(good),
	}
	sp, err := checker.NewSpec(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("spec: n=%d f=%d |V|=%d rounds=%d goodRound=%d\n",
		nodes, faulty, values, rounds, good)

	failed := false
	if mode == "bfs" || mode == "all" {
		res := sp.BFS(states, depth)
		// Visited counts expanded states; admitted (= transitions+1) counts
		// deduplicated states in the store — on truncated runs the frontier
		// still holds admitted-but-unvisited states, so the two diverge.
		// B/state is per admitted state, the trace store's denominator.
		fmt.Printf("bfs:        %d states visited, %d admitted (%d transitions), truncated=%v, trace store %s (%.1f B/state)\n",
			res.StatesExplored, res.Transitions+1, res.Transitions, res.Truncated,
			humanBytes(res.TraceStoreBytes), float64(res.TraceStoreBytes)/float64(res.Transitions+1))
		if res.Violation != nil {
			fmt.Printf("  VIOLATION: %v\n", res.Violation)
			failed = true
		}
	}
	if mode == "walks" || mode == "all" {
		res := sp.GuidedWalks(walks, steps, seed)
		fmt.Printf("walks:      %d states across %d guided walks\n", res.StatesExplored, walks)
		if res.Violation != nil {
			fmt.Printf("  VIOLATION: %v\n", res.Violation)
			failed = true
		}
	}
	if mode == "induction" || mode == "all" {
		res := sp.InductionSample(samples, seed)
		fmt.Printf("induction:  %d Inv states sampled (%d tried), %d steps re-checked\n",
			res.SamplesAccepted, res.SamplesTried, res.StepsChecked)
		if res.Violation != nil {
			fmt.Printf("  VIOLATION: %v\n", res.Violation)
			failed = true
		}
	}
	if mode == "liveness" || mode == "all" {
		if cfg.GoodRound < 0 {
			fmt.Println("liveness:   skipped (no good round)")
		} else {
			res := sp.LivenessFixpoint(walks/10+1, steps/4+1, seed)
			fmt.Printf("liveness:   %d/%d adversarial prefixes decided at the honest fixpoint\n",
				res.Decided, res.Runs)
			if res.Violation != nil {
				fmt.Printf("  VIOLATION: %v\n", res.Violation)
				failed = true
			}
		}
	}
	if failed {
		return fmt.Errorf("property violations found")
	}
	fmt.Println("all checked properties hold")
	return nil
}

// humanBytes renders a byte count with a binary unit (peak trace-store
// sizes range from KiB on smoke runs to MiB at the million-state default).
func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
