package tetrabft_test

import (
	"fmt"
	"testing"

	"tetrabft"
)

// TestQuickstartAPI runs the documented five-delay quick start through the
// public façade.
func TestQuickstartAPI(t *testing.T) {
	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
	for i := 0; i < 4; i++ {
		n, err := tetrabft.NewNode(tetrabft.Config{
			ID:           tetrabft.NodeID(i),
			Nodes:        4,
			InitialValue: tetrabft.Value(fmt.Sprintf("proposal-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Add(n)
	}
	if err := s.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	d, ok := s.Decision(0, 0)
	if !ok {
		t.Fatal("no decision")
	}
	if d.Val != "proposal-0" || d.At != 5 {
		t.Errorf("decision (%q, t=%d), want (proposal-0, 5)", d.Val, d.At)
	}
}

// TestChainAPI finalizes a short chain through the public façade and
// replays it into the KV state machine.
func TestChainAPI(t *testing.T) {
	mempools := make([]*tetrabft.Mempool, 4)
	nodes := make([]*tetrabft.ChainNode, 4)
	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
	for i := 0; i < 4; i++ {
		mp := tetrabft.NewMempool(0)
		mp.Submit(tetrabft.SetTx(fmt.Sprintf("key-%d", i), "1"))
		mempools[i] = mp
		n, err := tetrabft.NewChain(tetrabft.ChainConfig{
			ID:      tetrabft.NodeID(i),
			Nodes:   4,
			MaxSlot: 7,
			Payload: mp.PayloadSource(10),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		s.Add(n)
	}
	if err := s.Run(2000, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AgreementViolation(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].FinalizedSlot() != 4 {
		t.Fatalf("finalized %d slots, want 4", nodes[0].FinalizedSlot())
	}

	store := tetrabft.NewChainStore()
	kv := tetrabft.NewKV()
	for _, b := range nodes[0].FinalizedChain() {
		if err := store.Append(b); err != nil {
			t.Fatal(err)
		}
		kv.ApplyBlock(b)
	}
	if store.Height() != 4 {
		t.Errorf("store height %d, want 4", store.Height())
	}
	if kv.Len() == 0 {
		t.Error("no transactions reached the KV state machine")
	}
}

// TestWALAPI exercises the durable-state path through the façade.
func TestWALAPI(t *testing.T) {
	w, err := tetrabft.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	node, err := tetrabft.NewNode(tetrabft.Config{ID: 1, Nodes: 4, InitialValue: "x", Persist: w})
	if err != nil {
		t.Fatal(err)
	}
	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
	s.Add(node)
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		n, err := tetrabft.NewNode(tetrabft.Config{ID: tetrabft.NodeID(i), Nodes: 4, InitialValue: "x"})
		if err != nil {
			t.Fatal(err)
		}
		s.Add(n)
	}
	if err := s.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	state, found, err := w.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	restored, err := tetrabft.Restore(tetrabft.Config{ID: 1, Nodes: 4, InitialValue: "x"}, state)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != 1 {
		t.Errorf("restored ID = %d", restored.ID())
	}
}

// TestHeterogeneousQuorumAPI runs TetraBFT on an FBA-style quorum-slice
// system (each node trusts any 3-of-4 including itself — equivalent to the
// threshold system), reproducing the paper's Section 7 observation that
// TetraBFT transfers to heterogeneous trust.
func TestHeterogeneousQuorumAPI(t *testing.T) {
	members := []tetrabft.NodeID{0, 1, 2, 3}
	slices := make(map[tetrabft.NodeID][]tetrabft.NodeSet, len(members))
	for _, m := range members {
		var own []tetrabft.NodeSet
		// Every 3-subset containing the node itself is a slice.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				set := tetrabft.QuorumSet(m, members[i], members[j])
				if set.Len() == 3 {
					own = append(own, set)
				}
			}
		}
		slices[m] = own
	}
	sys, err := tetrabft.NewSlices(slices)
	if err != nil {
		t.Fatal(err)
	}

	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
	for _, m := range members {
		n, err := tetrabft.NewNode(tetrabft.Config{
			ID:           m,
			Quorum:       sys,
			InitialValue: "fba-value",
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Add(n)
	}
	if err := s.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AgreementViolation(); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		d, ok := s.Decision(m, 0)
		if !ok {
			t.Fatalf("node %d never decided", m)
		}
		if d.Val != "fba-value" {
			t.Errorf("node %d decided %q", m, d.Val)
		}
	}
}
