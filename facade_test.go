package tetrabft_test

import (
	"testing"

	"tetrabft"
)

// TestFacadeConstructors exercises the remaining public wrappers.
func TestFacadeConstructors(t *testing.T) {
	if _, err := tetrabft.NewThreshold(4); err != nil {
		t.Errorf("NewThreshold(4): %v", err)
	}
	if _, err := tetrabft.NewThreshold(0); err == nil {
		t.Error("NewThreshold(0) accepted")
	}

	txs := []tetrabft.Tx{tetrabft.SetTx("k", "v"), tetrabft.DelTx("k")}
	payload := tetrabft.EncodePayload(txs)
	decoded, err := tetrabft.DecodePayload(payload)
	if err != nil || len(decoded) != 2 {
		t.Errorf("payload round trip: %d txs, err %v", len(decoded), err)
	}

	mp := tetrabft.NewMempool(1)
	if !mp.Submit(tetrabft.SetTx("a", "b")) {
		t.Error("mempool rejected the first tx")
	}
	if mp.Submit(tetrabft.SetTx("c", "d")) {
		t.Error("mempool accepted beyond its limit")
	}

	set := tetrabft.QuorumSet(0, 1, 2)
	if set.Len() != 3 || !set.Has(1) {
		t.Errorf("QuorumSet = %v", set.Sorted())
	}

	if _, err := tetrabft.NewNode(tetrabft.Config{ID: 9, Nodes: 4}); err == nil {
		t.Error("NewNode accepted a non-member ID")
	}
	if _, err := tetrabft.NewChain(tetrabft.ChainConfig{ID: 0}); err == nil {
		t.Error("NewChain accepted an empty membership")
	}
	if _, err := tetrabft.Restore(tetrabft.Config{ID: 0, Nodes: 4}, tetrabft.PersistentState{View: -2}); err == nil {
		t.Error("Restore accepted a negative view")
	}
	if _, err := tetrabft.NewSlices(nil); err == nil {
		t.Error("NewSlices accepted an empty system")
	}
}

// TestFacadeRuntime spins up (and immediately shuts down) a TCP runtime
// through the façade.
func TestFacadeRuntime(t *testing.T) {
	node, err := tetrabft.NewNode(tetrabft.Config{ID: 0, Nodes: 4, InitialValue: "x", Delta: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tetrabft.NewRuntime(node, tetrabft.RuntimeConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Addr() == "" {
		t.Error("empty listen address")
	}
	rt.Run()
	rt.Close()
}

// TestFacadeChainStore exercises the chain-store wrapper.
func TestFacadeChainStore(t *testing.T) {
	store := tetrabft.NewChainStore()
	b1 := tetrabft.Block{Slot: 1, Payload: tetrabft.EncodePayload(nil)}
	if err := store.Append(b1); err != nil {
		t.Fatal(err)
	}
	if store.Height() != 1 {
		t.Errorf("Height = %d", store.Height())
	}
	kv := tetrabft.NewKV()
	kv.ApplyBlock(b1)
	if kv.Len() != 0 {
		t.Errorf("empty payload populated the KV: %d keys", kv.Len())
	}
}
