// Package tetrabft is a from-scratch Go implementation of TetraBFT
// (Yu, Losa, Wang — PODC 2024): an unauthenticated, optimistically
// responsive, partially synchronous Byzantine fault tolerant consensus
// protocol with optimal resilience (n ≥ 3f+1), constant persistent storage,
// O(n²) communication per view and a good-case latency of 5 message delays
// — plus its pipelined multi-shot extension that finalizes one block per
// message delay.
//
// The package is a façade over the implementation packages:
//
//   - RunScenario — the declarative experiment API: one JSON-serializable
//     Scenario spec describes cluster, faults, network regime, workload and
//     stop condition, and one call runs it (see examples/ and the bundled
//     NamedScenarios);
//   - RunScenarioWithGateway — the sharded service layer: shard clusters
//     plus an anchor cluster behind a client-facing HTTP gateway
//     (Scenario.Shards; see examples/kvstore);
//   - NewNode / Restore — single-shot consensus (Section 3 of the paper);
//   - NewChain — multi-shot, pipelined blockchain replication (Section 6);
//   - NewSim — the deterministic discrete-event network simulator used by
//     the paper-reproduction experiments;
//   - NewRuntime — a real TCP runtime for deployments;
//   - OpenWAL — crash-durable storage of the constant-size node state;
//   - NewMempool / NewKV / NewChainStore — ledger substrate.
//
// Quick start (see examples/quickstart for the full program):
//
//	s := tetrabft.NewSim(tetrabft.SimConfig{Seed: 1})
//	for i := 0; i < 4; i++ {
//		n, _ := tetrabft.NewNode(tetrabft.Config{
//			ID: tetrabft.NodeID(i), Nodes: 4, InitialValue: "hello",
//		})
//		s.Add(n)
//	}
//	_ = s.Run(0, nil)
//	d, _ := s.Decision(0, 0) // decided after exactly 5 message delays
//
// # Performance
//
// The simulator hot path is allocation-free: byte accounting uses the
// analytic types.EncodedSize (field widths, not serialization) and the
// event queue is an inlined value-typed 4-ary heap, so a send or an
// n-receiver broadcast costs zero heap allocations (pinned by
// testing.AllocsPerRun regression tests in internal/sim). The experiment
// sweeps in internal/bench and the model-checker exploration in
// internal/checker fan independent runs out over a GOMAXPROCS-bounded
// worker pool while staying byte-identical with sequential execution: same
// seed, same decisions, same byte counts, same explored-state counts,
// regardless of core count. `tetrabft-bench -json FILE` records a perf
// snapshot (experiment rows plus wall-clock timings) for tracking the
// trajectory across commits.
package tetrabft

import (
	"tetrabft/internal/blockchain"
	"tetrabft/internal/core"
	"tetrabft/internal/multishot"
	"tetrabft/internal/quorum"
	"tetrabft/internal/scenario"
	"tetrabft/internal/shard"
	"tetrabft/internal/sim"
	"tetrabft/internal/sweep"
	"tetrabft/internal/trace"
	"tetrabft/internal/transport"
	"tetrabft/internal/types"
	"tetrabft/internal/wal"
	"tetrabft/internal/workload"
)

// Core vocabulary, shared by every component.
type (
	// NodeID identifies a consensus node (0..n-1).
	NodeID = types.NodeID
	// View is a view (round) number.
	View = types.View
	// Slot is a position in the replicated log (1-based; 0 = single-shot).
	Slot = types.Slot
	// Value is an opaque consensus value.
	Value = types.Value
	// Time is virtual time in ticks (one tick = one message delay in the
	// latency experiments).
	Time = types.Time
	// Duration is a span of virtual time.
	Duration = types.Duration
	// Message is any wire message.
	Message = types.Message
	// Machine is a deterministic protocol state machine.
	Machine = types.Machine
	// Env is the effect interface machines act through.
	Env = types.Env
	// Block is a blockchain block.
	Block = types.Block
	// BlockID is a block's hash-pointer identity.
	BlockID = types.BlockID
)

// Single-shot consensus (the paper's primary contribution, Section 3).
type (
	// Config parameterizes a TetraBFT node.
	Config = core.Config
	// Node is a single-shot TetraBFT node.
	Node = core.Node
	// PersistentState is the constant-size durable state of a node.
	PersistentState = core.PersistentState
	// Persister stores durable state (see OpenWAL for the disk version).
	Persister = core.Persister
)

// NewNode builds a fresh single-shot TetraBFT node starting in view 0.
func NewNode(cfg Config) (*Node, error) { return core.NewNode(cfg) }

// Restore rebuilds a node from persisted state after a crash.
func Restore(cfg Config, state PersistentState) (*Node, error) {
	return core.Restore(cfg, state)
}

// Multi-shot pipelined replication (Section 6).
type (
	// ChainConfig parameterizes a multi-shot node.
	ChainConfig = multishot.Config
	// ChainNode is a pipelined multi-shot TetraBFT node.
	ChainNode = multishot.Node
)

// NewChain builds a multi-shot (blockchain) TetraBFT node.
func NewChain(cfg ChainConfig) (*ChainNode, error) { return multishot.NewNode(cfg) }

// Deterministic simulation.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// Sim is the deterministic discrete-event network runner.
	Sim = sim.Runner
	// DelayModel produces per-message network delays.
	DelayModel = sim.DelayModel
	// ConstantDelay delays every message by a fixed amount.
	ConstantDelay = sim.ConstantDelay
	// UniformDelay draws delays uniformly from [Min, Max].
	UniformDelay = sim.UniformDelay
	// PerLinkDelay gives each directed link its own fixed delay
	// (asymmetric, geographically skewed networks).
	PerLinkDelay = sim.PerLinkDelay
	// Adversary inspects and manipulates in-flight traffic.
	Adversary = sim.Adversary
	// Partition drops cross-group messages during [From, To).
	Partition = sim.Partition
	// Verdict is an adversary's ruling on one message.
	Verdict = sim.Verdict
	// Decision records one node's decision for one slot.
	Decision = sim.Decision
)

// NewSim creates a deterministic simulator.
func NewSim(cfg SimConfig) *Sim { return sim.New(cfg) }

// Real networking.
type (
	// RuntimeConfig parameterizes a TCP runtime.
	RuntimeConfig = transport.Config
	// Runtime hosts one Machine over TCP.
	Runtime = transport.Runtime
)

// NewRuntime creates a TCP runtime hosting machine; call SetPeers then Run.
func NewRuntime(machine Machine, cfg RuntimeConfig) (*Runtime, error) {
	return transport.New(machine, cfg)
}

// Durable storage.
type (
	// WAL stores a node's constant-size durable state on disk.
	WAL = wal.WAL
)

// OpenWAL creates (or reuses) the durable store rooted at dir.
func OpenWAL(dir string) (*WAL, error) { return wal.Open(dir) }

// Ledger substrate.
type (
	// Tx is an opaque transaction.
	Tx = blockchain.Tx
	// Mempool is a bounded FIFO of pending transactions.
	Mempool = blockchain.Mempool
	// ChainStore validates and records the finalized chain.
	ChainStore = blockchain.Store
	// KV is the replicated key-value state machine.
	KV = blockchain.KV
)

// NewMempool creates a mempool (limit <= 0 means 4096).
func NewMempool(limit int) *Mempool { return blockchain.NewMempool(limit) }

// NewChainStore creates an empty chain store.
func NewChainStore() *ChainStore { return blockchain.NewStore() }

// NewKV creates an empty replicated key-value store.
func NewKV() *KV { return blockchain.NewKV() }

// SetTx builds a "set key = value" transaction.
func SetTx(key, value string) Tx { return blockchain.SetTx(key, value) }

// DelTx builds a "delete key" transaction.
func DelTx(key string) Tx { return blockchain.DelTx(key) }

// EncodePayload packs transactions into a block payload.
func EncodePayload(txs []Tx) []byte { return blockchain.EncodePayload(txs) }

// DecodePayload unpacks a block payload.
func DecodePayload(p []byte) ([]Tx, error) { return blockchain.DecodePayload(p) }

// Quorum systems.
type (
	// QuorumSystem answers quorum and blocking-set questions.
	QuorumSystem = quorum.System
	// Threshold is the classic n ≥ 3f+1 threshold system.
	Threshold = quorum.Threshold
	// Slices is a heterogeneous (FBA-style) quorum-slice system, per the
	// paper's observation that TetraBFT transfers to heterogeneous trust.
	Slices = quorum.Slices
	// NodeSet is a set of node identities (used in slice definitions).
	NodeSet = quorum.Set
)

// NewThreshold builds a threshold quorum system for n nodes.
func NewThreshold(n int) (Threshold, error) { return quorum.NewThreshold(n) }

// NewSlices builds a heterogeneous quorum-slice system.
func NewSlices(slices map[NodeID][]NodeSet) (*Slices, error) {
	return quorum.NewSlices(slices)
}

// QuorumSet builds a node set for slice definitions.
func QuorumSet(nodes ...NodeID) NodeSet { return quorum.NewSet(nodes...) }

// Declarative scenarios: one spec for cluster + faults + network +
// workload; see package scenario for the full field reference and
// EXPERIMENTS.md for a worked JSON example.
type (
	// Scenario is the declarative, JSON-serializable spec for one run.
	Scenario = scenario.Scenario
	// ScenarioResult is what a scenario run measured.
	ScenarioResult = scenario.Result
	// ScenarioProtocol names a runnable consensus protocol.
	ScenarioProtocol = scenario.Protocol
	// ScenarioEngine selects the execution substrate (sim or tcp).
	ScenarioEngine = scenario.Engine
	// QuorumSpec declares heterogeneous quorum slices in a scenario.
	QuorumSpec = scenario.QuorumSpec
	// SliceSpec lists one node's quorum slices.
	SliceSpec = scenario.SliceSpec
	// NetworkSpec is a scenario's network regime.
	NetworkSpec = scenario.NetworkSpec
	// DelaySpec declares a scenario's delay model.
	DelaySpec = scenario.DelaySpec
	// LinkDelaySpec fixes the delay of one directed link.
	LinkDelaySpec = scenario.LinkDelaySpec
	// FaultType names a scenario fault behavior.
	FaultType = scenario.FaultType
	// ScenarioMutation names a deliberately broken protocol variant.
	ScenarioMutation = scenario.Mutation
	// FaultSpec declares one fault in a scenario's schedule.
	FaultSpec = scenario.FaultSpec
	// WorkloadSpec declares a scenario's inputs.
	WorkloadSpec = scenario.WorkloadSpec
	// TxSpec is one key-value transaction in a scenario workload.
	TxSpec = scenario.TxSpec
	// ArrivalSpec declares an open-loop arrival process for the offered
	// load (workload.arrival): Poisson, Gamma, Weibull or constant
	// inter-arrivals at a mean rate in txs per 100 ticks.
	ArrivalSpec = workload.ArrivalSpec
	// CohortSpec is one traffic cohort in an open-loop mix: a weight, a
	// key space and a transaction size.
	CohortSpec = workload.CohortSpec
	// PhaseSpec is one segment of a piecewise time-varying rate profile.
	PhaseSpec = workload.PhaseSpec
	// StopSpec declares when a scenario run ends.
	StopSpec = scenario.StopSpec
	// CollectSpec requests optional scenario result payloads.
	CollectSpec = scenario.CollectSpec
	// NodeDecision records one node's decision in a scenario result.
	NodeDecision = scenario.NodeDecision
	// NodeTransport is one replica's TCP link counters in a scenario
	// result (reconnects, frame drops, chaos verdicts).
	NodeTransport = scenario.NodeTransport
	// ShardsSpec turns a scenario into a sharded service deployment: S
	// shard clusters behind a key→shard router, anchored into one anchor
	// cluster (TetraBFTMulti only; both engines).
	ShardsSpec = scenario.ShardsSpec
	// ShardResult is one shard cluster's measurements in a sharded run.
	ShardResult = scenario.ShardResult
	// ShardRouter is the deterministic key→shard router the gateway and
	// the workload splitter share.
	ShardRouter = shard.Router
	// GatewayStatus is the sharded gateway's deployment snapshot
	// (GET /status).
	GatewayStatus = shard.Status
	// GatewayShardStatus is one shard's progress in a GatewayStatus.
	GatewayShardStatus = shard.ShardStatus
)

// Scenario protocols.
const (
	// ScenarioTetraBFT runs single-shot TetraBFT.
	ScenarioTetraBFT = scenario.TetraBFT
	// ScenarioTetraBFTMulti runs multi-shot, pipelined TetraBFT.
	ScenarioTetraBFTMulti = scenario.TetraBFTMulti
	// ScenarioITHotStuff runs the IT-HotStuff baseline.
	ScenarioITHotStuff = scenario.ITHotStuff
	// ScenarioITHotStuffBlog runs the non-responsive IT-HotStuff variant.
	ScenarioITHotStuffBlog = scenario.ITHotStuffBlog
	// ScenarioPBFT runs bounded-storage unauthenticated PBFT.
	ScenarioPBFT = scenario.PBFT
	// ScenarioPBFTUnbounded runs PBFT with its full message log.
	ScenarioPBFTUnbounded = scenario.PBFTUnbounded
	// ScenarioLiConsensus runs the Li et al. baseline.
	ScenarioLiConsensus = scenario.LiConsensus
	// ScenarioPBFTMulti chains single-shot PBFT instances through the
	// offered-load stream (the multishot PBFT baseline).
	ScenarioPBFTMulti = scenario.PBFTMulti
	// ScenarioITHotStuffMulti chains single-shot IT-HotStuff instances
	// through the offered-load stream.
	ScenarioITHotStuffMulti = scenario.ITHotStuffMulti
)

// Open-loop arrival processes for ArrivalSpec.Process.
const (
	// ArrivalPoisson draws exponential inter-arrivals (memoryless).
	ArrivalPoisson = workload.ProcessPoisson
	// ArrivalGamma draws gamma inter-arrivals (shape < 1 is bursty).
	ArrivalGamma = workload.ProcessGamma
	// ArrivalWeibull draws Weibull inter-arrivals.
	ArrivalWeibull = workload.ProcessWeibull
	// ArrivalConstant spaces arrivals uniformly at the mean rate.
	ArrivalConstant = workload.ProcessConstant
)

// ErrRateWithoutCount reports a workload that paces an offered-load stream
// (tx_rate or arrival) without bounding it (tx_count) — such a spec would
// silently offer nothing. tx_count always wins: it bounds the stream, the
// rate only paces it.
var ErrRateWithoutCount = scenario.ErrRateWithoutCount

// Scenario fault behaviors.
const (
	// FaultSilent crashes a node.
	FaultSilent = scenario.FaultSilent
	// FaultEquivocator splits the view-0 leader's proposal.
	FaultEquivocator = scenario.FaultEquivocator
	// FaultRandom replaces a node with the random fuzzer.
	FaultRandom = scenario.FaultRandom
	// FaultSuppressFinalPhase drops view 0's decision-completing phase.
	FaultSuppressFinalPhase = scenario.FaultSuppressFinalPhase
	// FaultSuppressProposals drops proposals below a view.
	FaultSuppressProposals = scenario.FaultSuppressProposals
	// FaultPartition drops cross-group messages during [From, To).
	FaultPartition = scenario.FaultPartition
	// FaultStarveDecision starves everyone but one node of the view-0
	// decision phase (the Lemma 8 cross-view setup).
	FaultStarveDecision = scenario.FaultStarveDecision
	// FaultForgedHistory replaces a node with the Lemma 8 Byzantine
	// leader pushing a conflicting value with a forged clean history.
	FaultForgedHistory = scenario.FaultForgedHistory
	// FaultCrashRestart hard-kills a TCP replica's process mid-run and
	// relaunches it from its write-ahead log (engine "tcp" only).
	FaultCrashRestart = scenario.FaultCrashRestart
)

// Deliberately broken protocol variants for adversarial harnesses (the
// scenario fuzzer's teeth); production specs use ScenarioMutationNone.
const (
	// ScenarioMutationNone runs the correct protocol.
	ScenarioMutationNone = scenario.MutationNone
	// ScenarioMutationSkipRule3 removes the Rule 3 safety check.
	ScenarioMutationSkipRule3 = scenario.MutationSkipRule3
	// ScenarioMutationNoPrevVote drops second-highest-vote tracking.
	ScenarioMutationNoPrevVote = scenario.MutationNoPrevVote
)

// RunScenario executes a declarative scenario and returns its result.
func RunScenario(sc Scenario) (*ScenarioResult, error) { return scenario.Run(sc) }

// RunScenarioWithGateway runs a sharded TCP scenario fronted by the HTTP
// gateway (submit/query/status over a 127.0.0.1 listener) and passes the
// gateway's base URL to onReady once the service accepts requests; the call
// then blocks until the run completes, exactly like RunScenario.
func RunScenarioWithGateway(sc Scenario, onReady func(url string)) (*ScenarioResult, error) {
	return scenario.RunWithGateway(sc, onReady)
}

// ParseScenario decodes and validates a JSON scenario spec (unknown fields
// are errors).
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// NamedScenarios returns the bundled, ready-to-run scenario library.
func NamedScenarios() []Scenario { return scenario.Named() }

// ScenarioByName returns the bundled scenario with the given name.
func ScenarioByName(name string) (Scenario, bool) { return scenario.ByName(name) }

// Experiment sweeps and scenario fuzzing: a Sweep crosses a base Scenario
// with axes into a grid, runs K seed replicates per cell in parallel
// (byte-identical at any core count), aggregates distribution statistics
// and checks declarative SLO assertions; Fuzz hunts for safety and
// liveness failures over random valid scenarios and shrinks findings to
// minimal reproducers. See package sweep and the EXPERIMENTS.md "Sweeps &
// fuzzing" section.
type (
	// Sweep is the declarative, JSON-serializable experiment grid.
	Sweep = sweep.Sweep
	// SweepAxis varies one scenario field across a list of values.
	SweepAxis = sweep.Axis
	// SweepResult is what a sweep run measured.
	SweepResult = sweep.Result
	// SweepCell is one grid cell's measurements.
	SweepCell = sweep.CellResult
	// SweepDist summarizes one metric across a cell's replicates.
	SweepDist = sweep.Dist
	// FuzzConfig declares the scenario fuzzer's sampling envelope.
	FuzzConfig = sweep.FuzzConfig
	// FuzzReport is what a fuzzing campaign produced.
	FuzzReport = sweep.FuzzReport
	// FuzzFailure is one finding, shrunk to a minimal reproducer.
	FuzzFailure = sweep.Failure
)

// RunSweep executes a sweep grid and returns its per-cell statistics and
// assertion verdict.
func RunSweep(sw Sweep) (*SweepResult, error) { return sweep.Run(sw) }

// ParseSweep decodes and validates a JSON sweep spec (unknown fields are
// errors).
func ParseSweep(data []byte) (Sweep, error) { return sweep.Parse(data) }

// NamedSweeps returns the bundled, ready-to-run sweep library.
func NamedSweeps() []Sweep { return sweep.Named() }

// SweepByName returns the bundled sweep with the given name.
func SweepByName(name string) (Sweep, bool) { return sweep.ByName(name) }

// FuzzScenarios runs a seeded fuzzing campaign: random valid scenarios,
// any failure shrunk to a minimal reproducing Scenario.
func FuzzScenarios(cfg FuzzConfig) (*FuzzReport, error) { return sweep.Fuzz(cfg) }

// Capacity planning: a CapacityPlan brackets and bisects to the knee — the
// highest offered rate (txs per 100 ticks) a base scenario sustains under
// declarative SLOs — probing each candidate rate as a replicated one-cell
// sweep. See internal/sweep/capacity.go and the EXPERIMENTS.md "Capacity
// planning" section.
type (
	// CapacityPlan is the declarative, JSON-serializable knee search.
	CapacityPlan = sweep.Capacity
	// CapacityResult is a capacity search's full record: every probe,
	// the knee, and the verdict ("tetrabft-capacity/v1").
	CapacityResult = sweep.CapacityResult
	// CapacityProbe is one probed rate and its one-cell measurement.
	CapacityProbe = sweep.ProbeResult
)

// RunCapacity executes a capacity plan's knee search.
func RunCapacity(cp CapacityPlan) (*CapacityResult, error) { return sweep.RunCapacity(cp) }

// ParseCapacityPlan decodes and validates a JSON capacity plan (unknown
// fields are errors).
func ParseCapacityPlan(data []byte) (CapacityPlan, error) { return sweep.ParseCapacity(data) }

// NamedCapacityPlans returns the bundled capacity plans.
func NamedCapacityPlans() []CapacityPlan { return sweep.NamedCapacity() }

// CapacityPlanByName returns the bundled capacity plan with the given name.
func CapacityPlanByName(name string) (CapacityPlan, bool) { return sweep.CapacityByName(name) }

// Tracing.
type (
	// TraceEvent is one protocol occurrence.
	TraceEvent = trace.Event
	// Tracer receives protocol events.
	Tracer = trace.Tracer
	// TraceLog collects events in memory.
	TraceLog = trace.Log
	// TraceWriter prints events to an io.Writer as they happen.
	TraceWriter = trace.Writer
)
