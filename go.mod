module tetrabft

go 1.24
